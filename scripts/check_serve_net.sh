#!/usr/bin/env bash
# Multi-process serving gate (docs/SERVING.md, docs/ROBUSTNESS.md): start a
# `chatpattern_serve --listen` front-end with 2 forked workers and assert
# the fault-isolation contract end-to-end:
#
#   1. fault-free TCP replay — every request answered ok, nothing degraded,
#      and the combined library hash bit-identical to the same trace
#      replayed offline (single process): the cross-process determinism
#      audit;
#   2. chaos: kill -9 one worker mid-replay — the front-end must not crash,
#      100% of requests must still complete (retried ones degraded-or-
#      better), and the supervisor must respawn the worker;
#   2b. chaos: kill -9 every worker at once mid-replay — retries cascade
#      onto already-dead shards (re-entrant worker-down handling); requests
#      may fail but the front-end must survive and answer every line;
#   3. chaos: SIGSTOP one worker mid-replay — the wedged worker must be
#      detected by heartbeat silence, killed, and its in-flight requests
#      retried on the survivor; again 0 front-end crashes, 100% completion;
#   4. graceful shutdown — {"cmd":"shutdown"} drains and the front-end exits
#      0 (a nonzero exit means the request ledger leaked accepted work).
#
# Each phase uses a fresh-content trace so the chaos signals land while real
# diffusion work is in flight instead of hitting warm worker caches.
#
# Usage: check_serve_net.sh <chatpattern_serve-binary> [workdir]
# Wired into ctest as `check_serve_net` (tests/CMakeLists.txt).
set -euo pipefail

SERVE_BIN=${1:?usage: check_serve_net.sh <chatpattern_serve-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"
PROCS=2
LINES=24

SERVER_PID=""
# Live worker pids from state.json. Dead shards are recorded as -1: those
# must never be treated as pids (a naive digit grep turns -1 into pid 1).
worker_pids() {
  [ -f "$WORKDIR/state.json" ] || return 0
  sed -n 's/.*"workers":\[\([-0-9,]*\)\].*/\1/p' "$WORKDIR/state.json" \
    | tr ',' '\n' | grep -v '^-' | grep . || true
}
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
  fi
  # Orphaned workers re-exec the same binary; sweep any we spawned.
  for pid in $(worker_pids); do
    kill -9 "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

# make_trace <file> <seed_base>: unique-content legalized requests, enough
# volume that a mid-replay worker loss has work in flight to retry.
make_trace() {
  local file=$1 base=$2
  : > "$file"
  for i in $(seq 0 $((LINES - 1))); do
    local style
    style=$([ $((i % 2)) -eq 0 ] && echo Layer-10001 || echo Layer-10003)
    echo "{\"id\":\"n$i\",\"style\":\"$style\",\"count\":1,\"rows\":32,\"cols\":32,\"steps\":6,\"polish\":1,\"width_nm\":2048,\"height_nm\":2048,\"seed\":$((base + i))}" >> "$file"
  done
}
make_trace "$WORKDIR/trace_clean.ndjson" 700
make_trace "$WORKDIR/trace_kill.ndjson" 800
make_trace "$WORKDIR/trace_stop.ndjson" 900
make_trace "$WORKDIR/trace_cascade.ndjson" 1000

# Offline reference hash (same binary, single process, same training).
env -u CHATPATTERN_FAULTS "$SERVE_BIN" --trace "$WORKDIR/trace_clean.ndjson" \
  --out "$WORKDIR/offline.ndjson" --train 24 --workers 2 2> "$WORKDIR/offline.log"
H0=$(grep -o 'combined_hash [0-9a-f]*' "$WORKDIR/offline.log" | awk '{print $2}')
[ -n "$H0" ] || { echo "FAIL: offline replay produced no combined hash" >&2; exit 1; }

# Start the multi-process front-end. The heartbeat timeout is raised above
# the 2s default so a parallel-ctest CPU squeeze cannot starve a healthy
# worker's heartbeat into a false-positive kill (which would turn retried
# requests into worker_lost_twice failures and flake the gate); SIGSTOP
# detection in phase 3 just takes those 5s instead of 2s.
env -u CHATPATTERN_FAULTS "$SERVE_BIN" --listen --procs "$PROCS" --train 24 \
  --hb-timeout-ms 5000 \
  --port-file "$WORKDIR/port.txt" --state-file "$WORKDIR/state.json" \
  --journal "$WORKDIR/ledger.cpsj" > "$WORKDIR/server.log" 2>&1 &
SERVER_PID=$!

# Wait for every worker to report ready (worker startup trains the backend).
alive=0
for _ in $(seq 1 600); do
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL: front-end died during startup" >&2;
                                          cat "$WORKDIR/server.log" >&2; exit 1; }
  if [ -f "$WORKDIR/state.json" ]; then
    alive=$(grep -o '"alive":[0-9]*' "$WORKDIR/state.json" | grep -o '[0-9]*' || echo 0)
    [ "$alive" = "$PROCS" ] && break
  fi
  sleep 0.5
done
[ "$alive" = "$PROCS" ] || { echo "FAIL: workers never became ready" >&2; exit 1; }
PORT=$(cat "$WORKDIR/port.txt")

replay() {  # replay <name> <trace>
  local name=$1 trace=$2
  "$SERVE_BIN" --connect-port "$PORT" --trace "$trace" --out "$WORKDIR/$name.ndjson" \
    2> "$WORKDIR/$name.log"
}
hash_of() { grep -o 'combined_hash [0-9a-f]*' "$WORKDIR/$1.log" | awk '{print $2}'; }
count_status() { grep -c "\"status\":\"$2\"" "$WORKDIR/$1.ndjson" || true; }
assert_complete() {  # every trace line answered
  local name=$1
  local n
  n=$(wc -l < "$WORKDIR/$name.ndjson")
  if [ "$n" -ne "$LINES" ]; then
    echo "FAIL($name): $n/$LINES requests answered" >&2
    exit 1
  fi
  if grep -q '"answered":false' "$WORKDIR/$name.ndjson"; then
    echo "FAIL($name): unanswered requests in outcome file" >&2
    exit 1
  fi
}
assert_frontend_alive() {
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL($1): front-end crashed" >&2
    tail -20 "$WORKDIR/server.log" >&2
    exit 1
  fi
}
wait_workers_back() {  # wait until $PROCS workers are alive with real pids
  for _ in $(seq 1 600); do
    alive=$(grep -o '"alive":[0-9]*' "$WORKDIR/state.json" | grep -o '[0-9]*' || echo 0)
    [ "$alive" = "$PROCS" ] && [ "$(worker_pids | wc -l)" -eq "$PROCS" ] && return 0
    sleep 0.5
  done
  echo "FAIL($1): supervisor did not restore $PROCS workers" >&2
  exit 1
}

# 1. Fault-free replay: bit-identical to the offline reference.
replay clean "$WORKDIR/trace_clean.ndjson"
assert_complete clean
assert_frontend_alive clean
if [ "$(hash_of clean)" != "$H0" ]; then
  echo "FAIL(clean): multi-process hash $(hash_of clean) != offline $H0" >&2
  exit 1
fi
if [ "$(count_status clean ok)" -ne "$LINES" ]; then
  echo "FAIL(clean): not every request ok" >&2
  exit 1
fi
if grep -q '"degraded":true' "$WORKDIR/clean.ndjson"; then
  echo "FAIL(clean): degraded results without any fault" >&2
  exit 1
fi

# 2. kill -9 one worker mid-replay.
VICTIM=$(worker_pids | head -1)
( sleep 0.4; kill -9 "$VICTIM" 2>/dev/null || true ) &
KILLER=$!
replay chaos_kill "$WORKDIR/trace_kill.ndjson"
wait "$KILLER" || true
assert_complete chaos_kill
assert_frontend_alive chaos_kill
if [ "$(count_status chaos_kill failed)" -ne 0 ]; then
  echo "FAIL(chaos_kill): requests failed instead of being retried" >&2
  exit 1
fi
wait_workers_back chaos_kill

# 2b. kill -9 EVERY worker at once mid-replay: the cascading-failure case.
# Retries for the first dead shard land on the other shard, which is also
# dead, so the retry write fails and re-enters the worker-down handler —
# the path that used to throw std::out_of_range through the event loop.
# Requests may legitimately fail here (no survivors); the contract is only
# that the front-end never crashes, answers every line, and the supervisor
# restores the fleet.
VICTIMS=$(worker_pids)
( sleep 0.4; for pid in $VICTIMS; do kill -9 "$pid" 2>/dev/null || true; done ) &
KILLER=$!
replay chaos_cascade "$WORKDIR/trace_cascade.ndjson"
wait "$KILLER" || true
assert_complete chaos_cascade
assert_frontend_alive chaos_cascade
wait_workers_back chaos_cascade

# 3. SIGSTOP one worker mid-replay (wedged, not dead: heartbeat silence
# must detect it). The supervisor's SIGKILL frees a stopped process.
VICTIM=$(worker_pids | head -1)
( sleep 0.4; kill -STOP "$VICTIM" 2>/dev/null || true ) &
STOPPER=$!
replay chaos_stop "$WORKDIR/trace_stop.ndjson"
wait "$STOPPER" || true
assert_complete chaos_stop
assert_frontend_alive chaos_stop
if [ "$(count_status chaos_stop failed)" -ne 0 ]; then
  echo "FAIL(chaos_stop): requests failed instead of being retried" >&2
  exit 1
fi
wait_workers_back chaos_stop

# 4. Graceful shutdown: drains and exits 0 (nonzero = ledger leak).
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf '{"cmd":"shutdown"}\n' >&3
read -r _reply <&3 || true
exec 3<&- 3>&-
rc=0
wait "$SERVER_PID" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL(shutdown): front-end exited $rc (accepted-work leak?)" >&2
  tail -20 "$WORKDIR/server.log" >&2
  exit 1
fi
SERVER_PID=""

restarts=$(grep -c 'down:' "$WORKDIR/server.log" || true)
echo "OK: ${LINES}-request replays survive kill -9 and SIGSTOP chaos" \
     "(hash $H0 fault-free, $restarts worker restart(s), clean shutdown)"
