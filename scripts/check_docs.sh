#!/usr/bin/env bash
# Docs/source cross-check, wired as a ctest (see tests/CMakeLists.txt).
#
# Verifies that the documentation cannot silently drift from the source tree:
#   1. every src/<module> directory is mentioned in DESIGN.md;
#   2. every bench binary (add_cp_bench + add_executable targets in
#      bench/CMakeLists.txt) is mentioned in EXPERIMENTS.md;
#   3. the documents cross-referenced from DESIGN.md/EXPERIMENTS.md exist;
#   4. every intra-repo markdown link [text](path) in the top-level *.md and
#      docs/*.md resolves to an existing file;
#   5. every docs/*.md is referenced from README.md or DESIGN.md.
#
# Usage: check_docs.sh [repo-root]   (defaults to the script's parent dir)

set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
fail=0

err() {
  echo "check_docs: $*" >&2
  fail=1
}

[ -f "$root/DESIGN.md" ] || { echo "check_docs: $root/DESIGN.md not found" >&2; exit 1; }
[ -f "$root/EXPERIMENTS.md" ] || { echo "check_docs: $root/EXPERIMENTS.md not found" >&2; exit 1; }

# 1. Every src/<module> must appear (as "src/<module>") in DESIGN.md.
for dir in "$root"/src/*/; do
  module="$(basename "$dir")"
  grep -q "src/$module" "$root/DESIGN.md" ||
    err "DESIGN.md does not mention src/$module"
done

# 2. Every bench target must appear in EXPERIMENTS.md.
benches="$(sed -n 's/^add_cp_bench(\([a-z0-9_]*\).*/\1/p;s/^add_executable(\([a-z0-9_]*\).*/\1/p' \
  "$root/bench/CMakeLists.txt")"
[ -n "$benches" ] || err "no bench targets parsed from bench/CMakeLists.txt"
for b in $benches; do
  grep -q "$b" "$root/EXPERIMENTS.md" ||
    err "EXPERIMENTS.md does not mention bench binary $b"
done

# 3. Cross-referenced documents must exist.
for doc in docs/OBSERVABILITY.md docs/SERVING.md docs/ROBUSTNESS.md ROADMAP.md README.md; do
  [ -f "$root/$doc" ] || err "referenced document $doc is missing"
done

# 4. Intra-repo markdown links must resolve. Links are [text](target); skip
#    URLs and pure #anchors, strip any #fragment, and resolve relative to the
#    file containing the link.
for md in "$root"/*.md "$root"/docs/*.md; do
  [ -f "$md" ] || continue
  dir="$(dirname "$md")"
  links="$(grep -o '\[[^]]*\]([^)]*)' "$md" | sed 's/.*(\(.*\))/\1/')"
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target="${link%%#*}"
    [ -n "$target" ] || continue
    if [ -e "$dir/$target" ] || [ -e "$root/$target" ]; then
      continue
    fi
    err "${md#"$root"/}: broken intra-repo link ($link)"
  done
done

# 5. Every docs/*.md must be reachable from the entry points.
for doc in "$root"/docs/*.md; do
  name="docs/$(basename "$doc")"
  grep -q "$name" "$root/README.md" "$root/DESIGN.md" ||
    err "$name is not referenced from README.md or DESIGN.md"
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED — update the docs alongside the source tree" >&2
  exit 1
fi
echo "check_docs: OK ($(echo "$benches" | wc -w) benches, $(ls -d "$root"/src/*/ | wc -l) modules)"
