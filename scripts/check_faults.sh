#!/usr/bin/env bash
# Fault-injection smoke test (docs/ROBUSTNESS.md): replay one NDJSON trace
# through chatpattern_serve under canned CHATPATTERN_FAULTS schedules and
# assert the degraded-mode serving contract:
#
#   1. baseline (faults unset): every request ok, nothing degraded — and the
#      combined library hash H0 is the reference for the transient runs;
#   2. transient sampling faults (denoiser/infer=every:7): the retry path
#      absorbs every fault, so the replay is bit-identical to H0 with zero
#      degraded results;
#   3. total sampling failure (denoiser/infer=every:1): every primary
#      attempt fails, every request still completes via the fallback
#      generator — 0 dropped, 0 failed, raw requests all ok and degraded;
#   4. transient legalization faults (legalize/run=every:5): the same
#      candidate is retried, so the replay is again bit-identical to H0.
#
# All runs use --workers 1: fault-point call counters are process-global, so
# a serial run makes the firing schedule exactly reproducible.
#
# Usage: check_faults.sh <chatpattern_serve-binary> [workdir]
# Wired into ctest as `check_faults` (tests/CMakeLists.txt).
set -euo pipefail

SERVE_BIN=${1:?usage: check_faults.sh <chatpattern_serve-binary> [workdir]}
WORKDIR=${2:-$(mktemp -d)}
mkdir -p "$WORKDIR"
TRACE="$WORKDIR/trace.ndjson"

# 18 unique-content requests (no cache/dedup traffic — every line exercises
# the generation path): 12 legalized, 6 raw-topology.
: > "$TRACE"
for i in $(seq 0 11); do
  style=$([ $((i % 2)) -eq 0 ] && echo Layer-10001 || echo Layer-10003)
  echo "{\"id\":\"leg$i\",\"style\":\"$style\",\"count\":1,\"rows\":32,\"cols\":32,\"steps\":6,\"polish\":1,\"width_nm\":2048,\"height_nm\":2048,\"seed\":$((300 + i))}" >> "$TRACE"
done
for i in $(seq 0 5); do
  echo "{\"id\":\"raw$i\",\"legalize\":false,\"rows\":16,\"cols\":16,\"steps\":4,\"polish\":0,\"seed\":$((500 + i))}" >> "$TRACE"
done
LINES=$(wc -l < "$TRACE")

run() {
  local name=$1 faults=$2
  local out="$WORKDIR/out_$name.ndjson" err="$WORKDIR/stderr_$name.log"
  if [ -n "$faults" ]; then
    CHATPATTERN_FAULTS="$faults" "$SERVE_BIN" --trace "$TRACE" --out "$out" \
      --train 24 --workers 1 2> "$err"
  else
    env -u CHATPATTERN_FAULTS "$SERVE_BIN" --trace "$TRACE" --out "$out" \
      --train 24 --workers 1 2> "$err"
  fi
  local results
  results=$(wc -l < "$out")
  if [ "$results" -ne "$LINES" ]; then
    echo "FAIL($name): $results result lines for $LINES trace lines (dropped requests)" >&2
    exit 1
  fi
}

hash_of() { grep -o 'combined_hash [0-9a-f]*' "$WORKDIR/stderr_$1.log" | awk '{print $2}'; }
count_status() { grep -c "\"status\":\"$2\"" "$WORKDIR/out_$1.ndjson" || true; }
count_degraded() { grep -c '"degraded":true' "$WORKDIR/out_$1.ndjson" || true; }

# 1. Baseline.
run baseline ""
H0=$(hash_of baseline)
if [ "$(count_degraded baseline)" -ne 0 ]; then
  echo "FAIL(baseline): degraded results without any fault schedule" >&2
  exit 1
fi
if [ "$(count_status baseline ok)" -ne "$LINES" ]; then
  echo "FAIL(baseline): not every request completed ok" >&2
  exit 1
fi

# 2. Transient sampling faults: retries absorb them; output bit-identical.
run transient "denoiser/infer=every:7"
if [ "$(hash_of transient)" != "$H0" ]; then
  echo "FAIL(transient): retry path changed the payload (hash $(hash_of transient) != $H0)" >&2
  exit 1
fi
if [ "$(count_degraded transient)" -ne 0 ]; then
  echo "FAIL(transient): transient faults should never reach the fallback" >&2
  exit 1
fi

# 3. Total sampling failure: everything completes through the fallback.
run degraded "denoiser/infer=every:1"
if [ "$(count_status degraded failed)" -ne 0 ]; then
  echo "FAIL(degraded): requests failed instead of degrading" >&2
  exit 1
fi
completed=$(( $(count_status degraded ok) + $(count_status degraded incomplete) ))
if [ "$completed" -ne "$LINES" ]; then
  echo "FAIL(degraded): only $completed/$LINES requests completed" >&2
  exit 1
fi
if [ "$(count_status degraded ok)" -lt 6 ]; then
  echo "FAIL(degraded): raw-topology requests did not all complete ok" >&2
  exit 1
fi
if [ "$(count_degraded degraded)" -lt 6 ]; then
  echo "FAIL(degraded): expected every fallback-served request marked degraded" >&2
  exit 1
fi

# 4. Transient legalization faults: same candidate retried; bit-identical.
run legfault "legalize/run=every:5"
if [ "$(hash_of legfault)" != "$H0" ]; then
  echo "FAIL(legfault): legalize retry changed the payload (hash $(hash_of legfault) != $H0)" >&2
  exit 1
fi
if [ "$(count_degraded legfault)" -ne 0 ]; then
  echo "FAIL(legfault): legalization faults must not degrade sampling" >&2
  exit 1
fi

echo "OK: $LINES requests survive transient and total fault schedules" \
     "(baseline hash $H0, degraded run served $(count_degraded degraded) fallbacks)"
