#!/usr/bin/env bash
# Fast-sampling gate (docs in DESIGN.md "TimestepSchedule", EXPERIMENTS.md
# "fast sampling ablation"): one command that proves the two claims the
# few-step engine stands on, by running the dedicated gtest binaries in a
# fixed order:
#
#   1. bit-identity — the stride-1 / degenerate-budget path of EVERY
#      ScheduleKind reproduces the original full-chain sampler bit-for-bit
#      on both denoiser families, and the composed-jump algebra matches the
#      literal per-step matrix products (fast_sampler_test);
#   2. statistical equivalence — at a 50-visited-step budget (K/20) each
#      fast mode keeps density / complexity / diversity within the
#      documented thresholds of the 1000-step chain (fast_quality_test).
#
# The split mirrors how the claims fail: 1 breaking means the algebra or the
# schedule construction regressed (fix the code); 2 breaking alone means the
# quality/thresholds drifted (inspect the printed per-metric table).
#
# Usage: check_fast_sampling.sh <fast_sampler_test-binary> <fast_quality_test-binary>
# Wired into ctest as `check_fast_sampling` (tests/CMakeLists.txt).
set -euo pipefail

SAMPLER_BIN=${1:?usage: check_fast_sampling.sh <fast_sampler_test-binary> <fast_quality_test-binary>}
QUALITY_BIN=${2:?usage: check_fast_sampling.sh <fast_sampler_test-binary> <fast_quality_test-binary>}

echo "== gate 1/2: composed-jump algebra + stride-1 bit-identity =="
"$SAMPLER_BIN" --gtest_brief=1 || {
  echo "FAIL(bit-identity): the fast-sampling algebra or the stride-1 anchor regressed" >&2
  exit 1
}

echo "== gate 2/2: few-step statistical equivalence =="
"$QUALITY_BIN" --gtest_brief=1 || {
  echo "FAIL(quality): few-step metrics drifted outside the documented thresholds" >&2
  exit 1
}

echo "OK: stride-1 is bit-identical and K/20 fast sampling is statistically equivalent"
