// Crash-safe populate journal (core/populate_journal.h, docs/ROBUSTNESS.md):
// a killed populate run restarted against its journal restores every
// completed round — regenerating zero already-accepted patterns — and the
// resumed library is bit-identical to an uninterrupted run.

#include "core/populate_journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/pattern_library.h"
#include "tests/agent/agent_fixture.h"
#include "util/fs.h"

namespace cp::core {
namespace {

class PopulateJournalTest : public agent::testing::AgentFixture {
 protected:
  static constexpr int kCount = 6;
  static constexpr std::uint64_t kSeed = 11;

  diffusion::SampleConfig sample_config() {
    diffusion::SampleConfig sc;
    sc.rows = kWindow;
    sc.cols = kWindow;
    sc.condition = 0;
    sc.sample_steps = 8;
    return sc;
  }

  PopulateStats populate(PatternLibrary& lib, PopulateJournal* journal,
                         std::uint64_t seed = kSeed) {
    return lib.populate(sampler_, legal0_, sample_config(), kBudgetNm, kBudgetNm, kCount, seed,
                        /*pool=*/nullptr, /*max_attempts=*/0, journal);
  }

  static void expect_same_patterns(const PatternLibrary& a, const PatternLibrary& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a.at(i).topology == b.at(i).topology) << "pattern " << i;
      EXPECT_EQ(a.at(i).dx, b.at(i).dx) << "pattern " << i;
      EXPECT_EQ(a.at(i).dy, b.at(i).dy) << "pattern " << i;
    }
  }

  std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }
};

TEST_F(PopulateJournalTest, JournaledRunMatchesPlainRun) {
  PatternLibrary plain("s");
  const PopulateStats ref = populate(plain, nullptr);
  ASSERT_TRUE(ref.complete);

  const std::string path = temp_path("journal_match.cppj");
  std::remove(path.c_str());
  PopulateJournal journal(path);
  PatternLibrary lib("s");
  const PopulateStats stats = populate(lib, &journal);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.attempts, ref.attempts);
  expect_same_patterns(lib, plain);
  std::remove(path.c_str());
}

TEST_F(PopulateJournalTest, RestartAfterCompletionRegeneratesNothing) {
  const std::string path = temp_path("journal_restart.cppj");
  std::remove(path.c_str());
  PatternLibrary first("s");
  PopulateStats ref;
  {
    PopulateJournal journal(path);
    ref = populate(first, &journal);
    ASSERT_TRUE(ref.complete);
  }

  // "Restart": a fresh library and journal object against the same file.
  // Every round is already journaled, so the resumed run samples nothing —
  // identical attempt counters and a bit-identical library.
  PatternLibrary second("s");
  PopulateJournal journal(path);
  const PopulateStats stats = populate(second, &journal);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.attempts, ref.attempts);
  EXPECT_EQ(stats.rounds, ref.rounds);
  expect_same_patterns(second, first);
  std::remove(path.c_str());
}

TEST_F(PopulateJournalTest, KillMidRunResumesBitIdentically) {
  PatternLibrary plain("s");
  populate(plain, nullptr);

  const std::string path = temp_path("journal_kill.cppj");
  std::remove(path.c_str());
  {
    PopulateJournal journal(path);
    PatternLibrary full("s");
    ASSERT_TRUE(populate(full, &journal).complete);
  }

  // Emulate a crash mid-append: chop bytes off the end of the journal. The
  // torn final record is dropped on open; earlier rounds survive intact.
  std::string raw = util::read_file(path);
  ASSERT_GT(raw.size(), 10u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(raw.data(), static_cast<std::streamsize>(raw.size() - 7));
  }

  PatternLibrary resumed("s");
  PopulateJournal journal(path);
  const PopulateStats stats = populate(resumed, &journal);
  EXPECT_TRUE(stats.complete);
  expect_same_patterns(resumed, plain);
  std::remove(path.c_str());
}

TEST_F(PopulateJournalTest, FingerprintMismatchStartsFresh) {
  const std::string path = temp_path("journal_fp.cppj");
  std::remove(path.c_str());
  {
    PopulateJournal journal(path);
    PatternLibrary lib("s");
    populate(lib, &journal);
  }

  // A different seed is a different run: the stale journal must be discarded
  // and the result must match a plain run at the new seed.
  PatternLibrary plain("s");
  populate(plain, nullptr, kSeed + 1);
  PatternLibrary lib("s");
  PopulateJournal journal(path);
  populate(lib, &journal, kSeed + 1);
  expect_same_patterns(lib, plain);
  std::remove(path.c_str());
}

TEST_F(PopulateJournalTest, GarbageJournalIsDiscardedNotFatal) {
  const std::string path = temp_path("journal_garbage.cppj");
  util::atomic_write_file(path, "not a journal at all");

  PatternLibrary plain("s");
  populate(plain, nullptr);
  PatternLibrary lib("s");
  PopulateJournal journal(path);
  const PopulateStats stats = populate(lib, &journal);
  EXPECT_TRUE(stats.complete);
  expect_same_patterns(lib, plain);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cp::core
