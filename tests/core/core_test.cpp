// Core-module tests that don't need the full trained facade: topology
// selection, GDS export of a PatternLibrary, and the session follow-up
// mechanism on the lightweight agent fixture.

#include <gtest/gtest.h>

#include "agent/chat_session.h"
#include "core/pattern_library.h"
#include "core/selection.h"
#include "io/gds.h"
#include "util/strings.h"
#include "tests/agent/agent_fixture.h"

namespace cp::core {
namespace {

class CoreTest : public agent::testing::AgentFixture {};

TEST_F(CoreTest, SelectionReaches100PercentLegality) {
  diffusion::SampleConfig sc;
  sc.rows = kWindow;
  sc.cols = kWindow;
  sc.condition = 0;
  sc.sample_steps = 8;
  util::Rng rng(3);
  const SelectionResult res =
      select_legal(sampler_, legal0_, sc, kBudgetNm, kBudgetNm, 5, rng);
  EXPECT_TRUE(res.complete);
  ASSERT_EQ(res.patterns.size(), 5u);
  EXPECT_GE(res.attempts, 5);
  for (const auto& p : res.patterns) {
    EXPECT_TRUE(drc::check(p, legal0_.rules()).clean());
  }
}

TEST_F(CoreTest, SelectionRespectsAttemptBudget) {
  diffusion::SampleConfig sc;
  sc.rows = kWindow;
  sc.cols = kWindow;
  sc.sample_steps = 8;
  util::Rng rng(3);
  // 20 nm budget is below the pitch floor: nothing ever legalizes.
  const SelectionResult res = select_legal(sampler_, legal0_, sc, 20, 20, 3, rng, 6);
  EXPECT_FALSE(res.complete);
  EXPECT_TRUE(res.patterns.empty());
  EXPECT_EQ(res.attempts, 6);
}

TEST_F(CoreTest, PopulateFillsLibraryWithCleanPatterns) {
  diffusion::SampleConfig sc;
  sc.rows = kWindow;
  sc.cols = kWindow;
  sc.condition = 0;
  sc.sample_steps = 8;
  PatternLibrary lib("Layer-10001");
  const PopulateStats stats =
      lib.populate(sampler_, legal0_, sc, kBudgetNm, kBudgetNm, 5, /*seed=*/11);
  EXPECT_TRUE(stats.complete);
  EXPECT_GE(stats.attempts, 5);
  ASSERT_EQ(lib.size(), 5u);
  for (const auto& p : lib.patterns()) {
    EXPECT_TRUE(drc::check(p, legal0_.rules()).clean());
  }
}

TEST_F(CoreTest, PopulateBitIdenticalAcrossThreadCounts) {
  diffusion::SampleConfig sc;
  sc.rows = kWindow;
  sc.cols = kWindow;
  sc.sample_steps = 8;
  PatternLibrary serial("Layer-10001"), pooled("Layer-10001");
  const PopulateStats a =
      serial.populate(sampler_, legal0_, sc, kBudgetNm, kBudgetNm, 4, /*seed=*/11);
  util::ThreadPool pool(4);
  const PopulateStats b =
      pooled.populate(sampler_, legal0_, sc, kBudgetNm, kBudgetNm, 4, /*seed=*/11, &pool);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.rounds, b.rounds);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.at(i).topology, pooled.at(i).topology) << "pattern " << i;
    EXPECT_EQ(serial.at(i).dx, pooled.at(i).dx) << "pattern " << i;
    EXPECT_EQ(serial.at(i).dy, pooled.at(i).dy) << "pattern " << i;
  }
}

TEST_F(CoreTest, PopulateRespectsAttemptBudget) {
  diffusion::SampleConfig sc;
  sc.rows = kWindow;
  sc.cols = kWindow;
  sc.sample_steps = 8;
  PatternLibrary lib("Layer-10001");
  // 20 nm budget is below the pitch floor: nothing ever legalizes.
  const PopulateStats stats = lib.populate(sampler_, legal0_, sc, 20, 20, 3, /*seed=*/11,
                                           /*pool=*/nullptr, /*max_attempts=*/6);
  EXPECT_FALSE(stats.complete);
  EXPECT_TRUE(lib.empty());
  EXPECT_EQ(stats.attempts, 6);
}

TEST_F(CoreTest, LibraryGdsExportRoundTrips) {
  PatternLibrary lib("Layer-10001");
  squish::SquishPattern p;
  p.topology = squish::Topology(2, 2);
  p.topology.set(0, 0, 1);
  p.dx = {100, 60};
  p.dy = {80, 50};
  lib.add(p);
  lib.add(p);
  const std::string path = ::testing::TempDir() + "/library.gds";
  EXPECT_EQ(lib.export_gds(path, 3), 2);
  const io::GdsLibrary back = io::read_gds(path);
  ASSERT_EQ(back.structures.size(), 2u);
  EXPECT_EQ(back.structures[0].layer, 3);
  ASSERT_EQ(back.structures[0].rects.size(), 1u);
  EXPECT_EQ(back.structures[0].rects[0], (geometry::Rect{0, 0, 100, 80}));
}

TEST_F(CoreTest, SessionFollowUpRepeatsLastRequest) {
  agent::ExperienceStore exp;
  agent::ChatSession session(&tools_, std::make_unique<agent::ScriptedBrain>(), &store_, &exp,
                             kWindow);
  agent::SessionReport first = session.handle(util::format(
      "Generate 2 patterns of %dx%d with physical size %lldx%lld nm in Layer-10001 style "
      "with seed 5.",
      kWindow, kWindow, kBudgetNm, kBudgetNm));
  ASSERT_EQ(first.total_produced(), 2) << first.transcript;

  agent::SessionReport more = session.handle("3 more please");
  ASSERT_EQ(more.subtasks.size(), 1u) << more.transcript;
  EXPECT_EQ(more.subtasks[0].requirement.count, 3);
  EXPECT_EQ(more.subtasks[0].requirement.style, "Layer-10001");
  EXPECT_EQ(more.total_produced(), 3) << more.transcript;
  EXPECT_NE(more.transcript.find("Follow-up detected"), std::string::npos);
  // Fresh seeds: the follow-up batch differs from the first.
  EXPECT_NE(more.subtasks[0].requirement.seed, first.subtasks[0].requirement.seed);
}

TEST_F(CoreTest, FollowUpWithoutHistoryDoesNothing) {
  agent::ExperienceStore exp;
  agent::ChatSession session(&tools_, std::make_unique<agent::ScriptedBrain>(), &store_, &exp,
                             kWindow);
  agent::SessionReport report = session.handle("again, more of the same");
  EXPECT_TRUE(report.subtasks.empty());
}

TEST_F(CoreTest, NonFollowUpChitchatStillIgnored) {
  agent::ExperienceStore exp;
  agent::ChatSession session(&tools_, std::make_unique<agent::ScriptedBrain>(), &store_, &exp,
                             kWindow);
  session.handle(util::format(
      "Generate 1 patterns of %dx%d with physical size %lldx%lld nm in Layer-10001 style.",
      kWindow, kWindow, kBudgetNm, kBudgetNm));
  agent::SessionReport report = session.handle("thanks, that is lovely");
  EXPECT_TRUE(report.subtasks.empty());
}

}  // namespace
}  // namespace cp::core
