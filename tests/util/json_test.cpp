#include "util/json.h"

#include <gtest/gtest.h>

namespace cp::util {
namespace {

TEST(JsonTest, ParsePrimitives) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_number(), 3.5);
  EXPECT_EQ(Json::parse("-42").as_int(), -42);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonTest, ParseNested) {
  const Json j = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  EXPECT_EQ(j.at("a").as_array().size(), 3u);
  EXPECT_TRUE(j.at("a").as_array()[2].at("b").as_bool());
  EXPECT_EQ(j.at("c").as_string(), "x");
}

TEST(JsonTest, ParseEscapes) {
  const Json j = Json::parse(R"("line\nbreak \"quoted\" A")");
  EXPECT_EQ(j.as_string(), "line\nbreak \"quoted\" A");
}

TEST(JsonTest, RoundTripCompact) {
  const std::string text = R"({"arr":[1,2,3],"b":false,"name":"x","nested":{"y":2}})";
  const Json j = Json::parse(text);
  EXPECT_EQ(Json::parse(j.dump()), j);
}

TEST(JsonTest, DumpEscapesControlCharacters) {
  Json j(std::string("a\tb\n"));
  EXPECT_EQ(j.dump(), "\"a\\tb\\n\"");
}

TEST(JsonTest, IntegersPrintWithoutExponent) {
  Json j(1000000LL);
  EXPECT_EQ(j.dump(), "1000000");
}

TEST(JsonTest, ParseErrorsThrow) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]2"), std::runtime_error);
  EXPECT_THROW(Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(Json::parse(R"({"a" 1})"), std::runtime_error);
  EXPECT_THROW(Json::parse("1 2"), std::runtime_error);
  EXPECT_THROW(Json::parse(""), std::runtime_error);
}

TEST(JsonTest, TypeMismatchThrows) {
  const Json j = Json::parse("[1]");
  EXPECT_THROW(j.as_object(), std::runtime_error);
  EXPECT_THROW(j.as_string(), std::runtime_error);
  EXPECT_THROW(j.at("missing"), std::runtime_error);
}

TEST(JsonTest, ObjectBuilderOperator) {
  Json j;
  j["count"] = 5;
  j["style"] = "Layer-10001";
  j["flag"] = true;
  EXPECT_EQ(j.at("count").as_int(), 5);
  EXPECT_TRUE(j.contains("style"));
  EXPECT_FALSE(j.contains("other"));
}

TEST(JsonTest, GettersWithDefaults) {
  Json j;
  j["n"] = 7;
  j["s"] = "v";
  EXPECT_EQ(j.get_int("n", 0), 7);
  EXPECT_EQ(j.get_int("missing", -1), -1);
  EXPECT_EQ(j.get_string("s", "d"), "v");
  EXPECT_EQ(j.get_string("n", "d"), "d");  // wrong type -> fallback
  EXPECT_TRUE(j.get_bool("missing", true));
  EXPECT_DOUBLE_EQ(j.get_number("missing", 2.5), 2.5);
}

TEST(JsonTest, MissingKeyAtThrowsWithName) {
  Json j;
  j["x"] = 1;
  try {
    j.at("region");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("region"), std::string::npos);
  }
}

TEST(JsonTest, PrettyPrintIsReparsable) {
  const Json j = Json::parse(R"({"a":[1,{"b":[2,3]}],"c":null})");
  EXPECT_EQ(Json::parse(j.dump(2)), j);
}

}  // namespace
}  // namespace cp::util
