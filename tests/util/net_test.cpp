// POSIX socket primitives of util::net: newline framing, loopback TCP,
// socketpair streams, nonblocking statuses and read timeouts
// (docs/SERVING.md "Process architecture").

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "util/net.h"

namespace cp::util::net {
namespace {

TEST(LineBufferTest, FramesAcrossArbitraryChunks) {
  LineBuffer buf;
  const std::string stream = "alpha\nbeta\r\ngam";
  // Feed one byte at a time: framing must be independent of chunking.
  for (const char c : stream) buf.append(&c, 1);
  std::string line;
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "alpha");
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "beta");  // trailing \r stripped
  EXPECT_FALSE(buf.next_line(&line));
  EXPECT_EQ(buf.pending(), 3u);  // "gam" awaits its newline
  buf.append("ma\n", 3);
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "gamma");
  EXPECT_EQ(buf.pending(), 0u);
}

TEST(LineBufferTest, EmptyLinesAreLines) {
  LineBuffer buf;
  buf.append("\n\nx\n", 4);
  std::string line;
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(buf.next_line(&line));
  EXPECT_EQ(line, "x");
}

TEST(NetTest, ListenConnectEcho) {
  int port = 0;
  Socket listener = listen_tcp("127.0.0.1", 0, 4, &port);
  ASSERT_TRUE(listener.valid());
  ASSERT_GT(port, 0);  // ephemeral port reported back
  ASSERT_TRUE(set_nonblocking(listener.fd(), true));

  std::thread client_thread([&] {
    Socket client = connect_tcp("127.0.0.1", port, 2000);
    ASSERT_EQ(send_all(client.fd(), "ping\n", 2000), IoStatus::kOk);
    LineReader reader(client.fd());
    std::string line;
    ASSERT_EQ(reader.read_line(&line, 2000), IoStatus::kOk);
    EXPECT_EQ(line, "pong");
  });

  Socket conn;
  // The nonblocking accept races the connect; poll until it lands.
  for (int i = 0; i < 100 && !conn.valid(); ++i) {
    poll_readable(listener.fd(), 50);
    const IoStatus st = accept_conn(listener.fd(), &conn);
    if (st == IoStatus::kOk) break;
    ASSERT_EQ(st, IoStatus::kAgain);
  }
  ASSERT_TRUE(conn.valid());
  LineReader reader(conn.fd());
  std::string line;
  ASSERT_EQ(reader.read_line(&line, 2000), IoStatus::kOk);
  EXPECT_EQ(line, "ping");
  ASSERT_EQ(send_all(conn.fd(), "pong\n", 2000), IoStatus::kOk);
  client_thread.join();
}

TEST(NetTest, SocketpairCarriesLinesBothWays) {
  auto [a, b] = socketpair_stream();
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  ASSERT_EQ(send_all(a.fd(), "{\"hb\":1}\n", 1000), IoStatus::kOk);
  LineReader rb(b.fd());
  std::string line;
  ASSERT_EQ(rb.read_line(&line, 1000), IoStatus::kOk);
  EXPECT_EQ(line, "{\"hb\":1}");
  ASSERT_EQ(send_all(b.fd(), "{\"cmd\":\"stop\"}\n", 1000), IoStatus::kOk);
  LineReader ra(a.fd());
  ASSERT_EQ(ra.read_line(&line, 1000), IoStatus::kOk);
  EXPECT_EQ(line, "{\"cmd\":\"stop\"}");
}

TEST(NetTest, ReadLineTimesOutOnSilence) {
  auto [a, b] = socketpair_stream();
  LineReader reader(a.fd());
  std::string line;
  EXPECT_EQ(reader.read_line(&line, 50), IoStatus::kTimeout);
  (void)b;
}

TEST(NetTest, ReadLineReportsEofAfterPeerClose) {
  auto [a, b] = socketpair_stream();
  ASSERT_EQ(send_all(b.fd(), "last\n", 1000), IoStatus::kOk);
  b.reset();
  LineReader reader(a.fd());
  std::string line;
  ASSERT_EQ(reader.read_line(&line, 1000), IoStatus::kOk);
  EXPECT_EQ(line, "last");  // buffered line first
  EXPECT_EQ(reader.read_line(&line, 1000), IoStatus::kClosed);
}

TEST(NetTest, OversizedLineIsAProtocolError) {
  auto [a, b] = socketpair_stream();
  const std::string big(256, 'x');
  ASSERT_EQ(send_all(b.fd(), big, 1000), IoStatus::kOk);  // no newline yet
  LineReader reader(a.fd(), /*max_line_bytes=*/64);
  std::string line;
  EXPECT_EQ(reader.read_line(&line, 1000), IoStatus::kError);
}

TEST(NetTest, NonblockingReadReportsAgain) {
  auto [a, b] = socketpair_stream();
  ASSERT_TRUE(set_nonblocking(a.fd(), true));
  char buf[16];
  std::size_t n = 0;
  EXPECT_EQ(read_some(a.fd(), buf, sizeof(buf), &n), IoStatus::kAgain);
  (void)b;
}

TEST(NetTest, WriteToClosedPeerIsAnErrorNotASignal) {
  // ignore_sigpipe() must turn EPIPE into IoStatus::kError; a SIGPIPE would
  // kill the test binary outright.
  auto [a, b] = socketpair_stream();
  b.reset();
  const std::string data(1 << 16, 'y');
  IoStatus st = IoStatus::kOk;
  // The first write may land in the kernel buffer; keep writing until the
  // broken pipe surfaces.
  for (int i = 0; i < 64 && st == IoStatus::kOk; ++i) {
    std::size_t n = 0;
    st = write_some(a.fd(), data, &n);
  }
  EXPECT_EQ(st, IoStatus::kError);
}

}  // namespace
}  // namespace cp::util::net
