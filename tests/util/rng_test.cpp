#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace cp::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(2, 5));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 2);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(RngTest, UniformIntThrowsOnBadRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.015);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalScaled) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(9);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, CategoricalAllZeroWeightsReturnsLast) {
  Rng rng(9);
  std::vector<double> w{0.0, 0.0, 0.0};
  EXPECT_EQ(rng.categorical(w), 2u);
}

TEST(RngTest, CategoricalEmptyThrows) {
  Rng rng(9);
  std::vector<double> w;
  EXPECT_THROW(rng.categorical(w), std::invalid_argument);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(42);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SplitMix64KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  std::uint64_t s2 = 0;
  EXPECT_EQ(first, splitmix64(s2));
  EXPECT_NE(first, splitmix64(s2));
}

}  // namespace
}  // namespace cp::util
