// fork/exec/waitpid wrappers of util (subprocess.h): spawn, reap, kill and
// liveness — the primitives under the serving supervisor
// (docs/SERVING.md "Process architecture").

#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "util/subprocess.h"

namespace cp::util {
namespace {

TEST(SubprocessTest, SelfExePathPointsAtARealFile) {
  const std::string path = self_exe_path("fallback");
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), '/');
  EXPECT_NE(path, "fallback");
}

TEST(SubprocessTest, SpawnAndWaitExitCode) {
  std::string error;
  const pid_t ok = spawn_process({"/bin/sh", "-c", "exit 0"}, &error);
  ASSERT_GT(ok, 0) << error;
  EXPECT_TRUE(wait_process(ok).exited);

  const pid_t fail = spawn_process({"/bin/sh", "-c", "exit 7"}, &error);
  ASSERT_GT(fail, 0) << error;
  const ExitStatus st = wait_process(fail);
  EXPECT_TRUE(st.exited);
  EXPECT_EQ(st.code, 7);
}

TEST(SubprocessTest, FailedExecExits127) {
  std::string error;
  const pid_t pid = spawn_process({"/no/such/binary/anywhere"}, &error);
  ASSERT_GT(pid, 0) << error;  // fork succeeds; the exec fails in the child
  const ExitStatus st = wait_process(pid);
  EXPECT_TRUE(st.exited);
  EXPECT_EQ(st.code, 127);
}

TEST(SubprocessTest, TryWaitIsNonBlocking) {
  std::string error;
  const pid_t pid = spawn_process({"/bin/sh", "-c", "sleep 5"}, &error);
  ASSERT_GT(pid, 0) << error;
  ExitStatus st;
  EXPECT_FALSE(try_wait(pid, &st));  // still running
  EXPECT_TRUE(process_alive(pid));
  ASSERT_TRUE(kill_process(pid, SIGKILL));
  const ExitStatus reaped = wait_process(pid);
  EXPECT_TRUE(reaped.signaled);
  EXPECT_EQ(reaped.signal, SIGKILL);
  EXPECT_FALSE(kill_process(pid, 0));  // gone: delivery fails
}

TEST(SubprocessTest, SigstopPausesUntilSigkill) {
  // The supervisor's answer to a wedged (SIGSTOPped) worker is SIGKILL,
  // which frees a stopped process without SIGCONT.
  std::string error;
  const pid_t pid = spawn_process({"/bin/sh", "-c", "sleep 5"}, &error);
  ASSERT_GT(pid, 0) << error;
  ASSERT_TRUE(kill_process(pid, SIGSTOP));
  ExitStatus st;
  EXPECT_FALSE(try_wait(pid, &st));  // stopped, not exited
  EXPECT_TRUE(process_alive(pid));
  ASSERT_TRUE(kill_process(pid, SIGKILL));
  EXPECT_EQ(wait_process(pid).signal, SIGKILL);
}

TEST(SubprocessTest, ReapAnyCollectsExitedChildren) {
  std::string error;
  std::vector<pid_t> pids;
  for (int i = 0; i < 3; ++i) {
    const pid_t pid = spawn_process({"/bin/sh", "-c", "exit 0"}, &error);
    ASSERT_GT(pid, 0) << error;
    pids.push_back(pid);
  }
  int reaped = 0;
  for (int spin = 0; spin < 2000 && reaped < 3; ++spin) {
    ExitStatus st;
    if (reap_any(&st) > 0) {
      EXPECT_TRUE(st.exited);
      ++reaped;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(reaped, 3);
}

TEST(SubprocessTest, DescribeIsHumanReadable) {
  ExitStatus exited;
  exited.exited = true;
  exited.code = 3;
  EXPECT_NE(exited.describe().find("3"), std::string::npos);
  ExitStatus killed;
  killed.signaled = true;
  killed.signal = SIGKILL;
  EXPECT_NE(killed.describe().find("9"), std::string::npos);
}

}  // namespace
}  // namespace cp::util
