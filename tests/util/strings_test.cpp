#include "util/strings.h"

#include <gtest/gtest.h>

namespace cp::util {
namespace {

TEST(StringsTest, ToLower) {
  EXPECT_EQ(to_lower("Layer-10001 ABC"), "layer-10001 abc");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitWsDropsEmpty) {
  const auto parts = split_ws("  one \t two\nthree ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("topology_generation", "topology"));
  EXPECT_FALSE(starts_with("top", "topology"));
  EXPECT_TRUE(ends_with("pattern.pbm", ".pbm"));
  EXPECT_FALSE(ends_with("pbm", ".pbm"));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(replace_all("a then b then c", " then ", " . "), "a . b . c");
  EXPECT_EQ(replace_all("aaa", "a", "aa"), "aaaaaa");
  EXPECT_EQ(replace_all("abc", "", "x"), "abc");
}

TEST(StringsTest, ParseQuantityPlain) {
  EXPECT_EQ(parse_quantity("12345").value(), 12345);
  EXPECT_EQ(parse_quantity("0").value(), 0);
}

TEST(StringsTest, ParseQuantityThousandsSeparators) {
  EXPECT_EQ(parse_quantity("50,000").value(), 50000);
  EXPECT_EQ(parse_quantity("1,000,000").value(), 1000000);
}

TEST(StringsTest, ParseQuantitySuffixes) {
  EXPECT_EQ(parse_quantity("50k").value(), 50000);
  EXPECT_EQ(parse_quantity("50K").value(), 50000);
  EXPECT_EQ(parse_quantity("2M").value(), 2000000);
  EXPECT_EQ(parse_quantity("1.5m").value(), 1500000);
}

TEST(StringsTest, ParseQuantityRejectsJunk) {
  EXPECT_FALSE(parse_quantity("abc").has_value());
  EXPECT_FALSE(parse_quantity("").has_value());
  EXPECT_FALSE(parse_quantity("12x7").has_value());
  // Non-integer results are rejected (0.5 patterns makes no sense).
  EXPECT_FALSE(parse_quantity("0.5").has_value());
}

TEST(StringsTest, FormatBasic) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%lld", 1234567890123LL), "1234567890123");
}

}  // namespace
}  // namespace cp::util
