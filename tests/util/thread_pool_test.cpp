#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace cp::util {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, DefaultSizeIsHardware) {
  ThreadPool pool;
  EXPECT_EQ(pool.size(), ThreadPool::hardware_threads());
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](long long i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](long long) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](long long i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromSubmit) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("task boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool must stay usable after a task throws.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ExceptionPropagatesLowestIndexFromParallelFor) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.parallel_for(100, [&](long long i) {
      if (i == 13 || i == 77) throw std::invalid_argument("index " + std::to_string(i));
      completed.fetch_add(1);
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "index 13") << "lowest failing index wins";
  }
  EXPECT_EQ(completed.load(), 98) << "non-throwing indices still run";
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);  // fewer workers than outer tasks: must not deadlock
  std::atomic<long long> sum{0};
  pool.parallel_for(8, [&](long long outer) {
    pool.parallel_for(16, [&](long long inner) { sum.fetch_add(outer * 16 + inner); });
  });
  long long expect = 0;
  for (long long i = 0; i < 8 * 16; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPoolTest, NestedSubmitWithWaitHelp) {
  ThreadPool pool(2);
  // Every outer task submits a child and waits for it with wait_help. With
  // plain future.get() this saturates a 2-worker pool (both workers block on
  // children that can never be scheduled); wait_help runs queued tasks
  // while waiting, so it must complete.
  std::vector<std::future<int>> outers;
  for (int i = 0; i < 8; ++i) {
    outers.push_back(pool.submit([&pool, i] {
      auto child = pool.submit([i] { return i * 10; });
      pool.wait_help(child);
      return child.get() + 1;
    }));
  }
  for (int i = 0; i < 8; ++i) EXPECT_EQ(outers[static_cast<std::size_t>(i)].get(), i * 10 + 1);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedWork) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      }));
    }
    // Destructor runs here with most of the queue still pending.
  }
  EXPECT_EQ(ran.load(), 64) << "destructor must finish queued tasks, not drop them";
  for (auto& future : futures) EXPECT_NO_THROW(future.get()) << "no broken promises";
}

TEST(ThreadPoolTest, ManyConcurrentParallelForCallers) {
  // Stress: several threads all issuing parallel_for on one pool.
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        pool.parallel_for(50, [&](long long) { total.fetch_add(1); });
      }
    });
  }
  for (auto& caller : callers) caller.join();
  EXPECT_EQ(total.load(), 4LL * 20 * 50);
}

}  // namespace
}  // namespace cp::util
