#include "util/cli.h"

#include <gtest/gtest.h>

#include <vector>

namespace cp::util {
namespace {

CliFlags make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return CliFlags(static_cast<int>(args.size()),
                  const_cast<char**>(const_cast<const char**>(args.data())));
}

TEST(CliTest, SeparateValueForm) {
  const CliFlags f = make({"--samples", "200", "--seed", "7"});
  EXPECT_EQ(f.get_int("samples", 0), 200);
  EXPECT_EQ(f.get_int("seed", 0), 7);
}

TEST(CliTest, EqualsForm) {
  const CliFlags f = make({"--samples=300", "--name=t1"});
  EXPECT_EQ(f.get_int("samples", 0), 300);
  EXPECT_EQ(f.get("name", ""), "t1");
}

TEST(CliTest, BooleanSwitch) {
  const CliFlags f = make({"--csv", "--verbose=false"});
  EXPECT_TRUE(f.get_bool("csv", false));
  EXPECT_FALSE(f.get_bool("verbose", true));
  EXPECT_TRUE(f.get_bool("missing", true));
}

TEST(CliTest, Positional) {
  const CliFlags f = make({"input.txt", "--k", "3", "out.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "out.txt");
}

TEST(CliTest, QuantitySuffixInInt) {
  const CliFlags f = make({"--samples", "10k"});
  EXPECT_EQ(f.get_int("samples", 0), 10000);
}

TEST(CliTest, DoubleFlag) {
  const CliFlags f = make({"--ratio", "0.25"});
  EXPECT_DOUBLE_EQ(f.get_double("ratio", 0), 0.25);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 1.5), 1.5);
}

TEST(CliTest, MissingFallbacks) {
  const CliFlags f = make({});
  EXPECT_FALSE(f.has("x"));
  EXPECT_EQ(f.get("x", "fb"), "fb");
  EXPECT_EQ(f.get_int("x", 42), 42);
}

}  // namespace
}  // namespace cp::util
