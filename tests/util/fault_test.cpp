// Fault-injection registry, retry helper, and crash-safe persistence
// primitives (docs/ROBUSTNESS.md).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "util/fault.h"
#include "util/fs.h"
#include "util/retry.h"
#include "util/rng.h"

namespace cp::util {
namespace {

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::clear(); }
};

TEST_F(FaultTest, DisarmedPointIsInert) {
  fault::clear();
  EXPECT_FALSE(fault::armed());
  for (int i = 0; i < 100; ++i) EXPECT_NO_THROW(fault::point("nothing/armed"));
}

TEST_F(FaultTest, EveryNFiresOnMultiples) {
  fault::configure("t/every=every:3");
  EXPECT_TRUE(fault::armed());
  int fired = 0;
  for (int call = 1; call <= 9; ++call) {
    try {
      fault::point("t/every");
    } catch (const fault::FaultInjected& e) {
      ++fired;
      EXPECT_EQ(e.point_name(), "t/every");
      EXPECT_EQ(call % 3, 0) << "fired on call " << call;
    }
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(fault::fired_count("t/every"), 3);
  EXPECT_EQ(fault::call_count("t/every"), 9);
}

TEST_F(FaultTest, OnceFiresExactlyOnce) {
  fault::configure("t/once=once:2");
  EXPECT_NO_THROW(fault::point("t/once"));
  EXPECT_THROW(fault::point("t/once"), fault::FaultInjected);
  for (int i = 0; i < 10; ++i) EXPECT_NO_THROW(fault::point("t/once"));
  EXPECT_EQ(fault::fired_count("t/once"), 1);
}

TEST_F(FaultTest, ProbIsDeterministicPerSeed) {
  auto firing_pattern = [] {
    fault::configure("t/prob=prob:0.5:42");
    std::string pattern;
    for (int i = 0; i < 64; ++i) pattern += fault::should_fire("t/prob") ? '1' : '0';
    return pattern;
  };
  const std::string first = firing_pattern();
  EXPECT_EQ(first, firing_pattern()) << "same seed must reproduce the schedule";
  EXPECT_NE(first.find('1'), std::string::npos);
  EXPECT_NE(first.find('0'), std::string::npos);
}

TEST_F(FaultTest, MultiPointSpecAndUnlistedPointsStayInert) {
  fault::configure("a=every:1;b=once:1,c=every:2");
  EXPECT_THROW(fault::point("a"), fault::FaultInjected);
  EXPECT_THROW(fault::point("b"), fault::FaultInjected);
  EXPECT_NO_THROW(fault::point("c"));  // call 1
  EXPECT_THROW(fault::point("c"), fault::FaultInjected);
  EXPECT_NO_THROW(fault::point("unlisted"));
}

TEST_F(FaultTest, MalformedSpecThrows) {
  EXPECT_THROW(fault::configure("oops"), std::invalid_argument);
  EXPECT_THROW(fault::configure("x=every:0"), std::invalid_argument);
  EXPECT_THROW(fault::configure("x=prob:1.5:1"), std::invalid_argument);
  EXPECT_THROW(fault::configure("x=nosuch:1"), std::invalid_argument);
}

TEST_F(FaultTest, ClearDisarmsAndResetsCounters) {
  fault::configure("t/clear=every:1");
  EXPECT_THROW(fault::point("t/clear"), fault::FaultInjected);
  fault::clear();
  EXPECT_FALSE(fault::armed());
  EXPECT_EQ(fault::fired_count("t/clear"), 0);
  EXPECT_NO_THROW(fault::point("t/clear"));
}

// ---- retry -----------------------------------------------------------------

TEST(RetryTest, SucceedsAfterTransientFailures) {
  Rng rng(1);
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  RetryStats stats;
  const int value = retry_call(
      policy, rng,
      [&] {
        if (++calls < 3) throw std::runtime_error("transient");
        return 42;
      },
      &stats);
  EXPECT_EQ(value, 42);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_TRUE(stats.succeeded);
}

TEST(RetryTest, RethrowsWhenBudgetExhausted) {
  Rng rng(1);
  RetryPolicy policy;
  policy.max_attempts = 2;
  int calls = 0;
  RetryStats stats;
  EXPECT_THROW(retry_call(
                   policy, rng, [&]() -> int { ++calls; throw std::runtime_error("hard"); },
                   &stats),
               std::runtime_error);
  EXPECT_EQ(calls, 2);
  EXPECT_FALSE(stats.succeeded);
}

TEST(RetryTest, VoidFunctionsWork) {
  Rng rng(1);
  int calls = 0;
  retry_call(RetryPolicy{}, rng, [&] {
    if (++calls < 2) throw std::runtime_error("transient");
  });
  EXPECT_EQ(calls, 2);
}

TEST(RetryTest, BackoffIsCappedAndJittered) {
  RetryPolicy policy;
  policy.base_delay_ms = 10.0;
  policy.max_delay_ms = 40.0;
  policy.backoff = 2.0;
  Rng rng(7);
  for (int attempt = 0; attempt < 6; ++attempt) {
    const double d = backoff_delay_ms(policy, attempt, rng);
    EXPECT_GE(d, 0.5 * 10.0);
    EXPECT_LE(d, 40.0);
  }
}

// ---- crash-safe persistence ------------------------------------------------

TEST(FsTest, Crc32KnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  // Incremental == one-shot.
  EXPECT_EQ(crc32("6789", crc32("12345")), crc32("123456789"));
}

TEST(FsTest, AtomicWriteRoundTripAndOverwrite) {
  const std::string path = temp_path("cp_fs_atomic.bin");
  atomic_write_file(path, "first contents");
  EXPECT_EQ(read_file(path), "first contents");
  atomic_write_file(path, "second");
  EXPECT_EQ(read_file(path), "second");
  std::remove(path.c_str());
}

TEST(FsTest, AtomicWriteCreatesParentDirectories) {
  const std::string dir = temp_path("cp_fs_nested");
  const std::string path = dir + "/a/b/file.txt";
  std::filesystem::remove_all(dir);
  atomic_write_file(path, "deep");
  EXPECT_EQ(read_file(path), "deep");
  std::filesystem::remove_all(dir);
}

TEST(FsTest, ReadFileEnforcesByteCap) {
  const std::string path = temp_path("cp_fs_cap.bin");
  atomic_write_file(path, std::string(128, 'x'));
  EXPECT_NO_THROW(read_file(path, 128));
  EXPECT_THROW(read_file(path, 64), std::runtime_error);
  std::remove(path.c_str());
}

TEST(FsTest, ChecksummedRoundTripDetectsCorruption) {
  const std::string path = temp_path("cp_fs_crc.bin");
  atomic_write_file_checksummed(path, "precious payload");
  EXPECT_EQ(read_file_checksummed(path, "test", /*require_trailer=*/true), "precious payload");

  // Flip one payload byte on disk: the trailer no longer matches.
  std::string raw = read_file(path);
  raw[3] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
  }
  EXPECT_THROW(read_file_checksummed(path, "test"), std::runtime_error);
  std::remove(path.c_str());
}

TEST(FsTest, TrailerlessLegacyFilesTolerated) {
  const std::string path = temp_path("cp_fs_legacy.bin");
  atomic_write_file(path, "no trailer here");
  EXPECT_EQ(read_file_checksummed(path, "test"), "no trailer here");
  EXPECT_THROW(read_file_checksummed(path, "test", /*require_trailer=*/true),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST_F(FaultTest, InjectedWriteFaultLeavesDestinationIntact) {
  const std::string path = temp_path("cp_fs_faulted.bin");
  atomic_write_file(path, "stable state");
  fault::configure("io/atomic_write=once:1");
  EXPECT_THROW(atomic_write_file(path, "never lands"), fault::FaultInjected);
  fault::clear();
  EXPECT_EQ(read_file(path), "stable state") << "a failed write must not tear the old file";
  EXPECT_EQ(fault::fired_count("io/atomic_write"), 0);  // cleared
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cp::util
