#include "nn/optim.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cp::nn {
namespace {

TEST(OptimTest, AdamMinimizesQuadratic) {
  // Minimize f(w) = sum (w - 3)^2 by hand-fed gradients.
  Param p;
  p.value = Tensor({4}, 0.0f);
  p.grad = Tensor({4}, 0.0f);
  Adam opt({&p}, 0.1f);
  for (int step = 0; step < 500; ++step) {
    for (std::size_t i = 0; i < 4; ++i) p.grad[i] = 2.0f * (p.value[i] - 3.0f);
    opt.step();
    p.grad.fill(0.0f);
  }
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(p.value[i], 3.0f, 0.05f);
  EXPECT_EQ(opt.steps(), 500);
}

TEST(OptimTest, AdamBeatsSgdOnIllConditioned) {
  // f(w) = 100 w0^2 + w1^2: Adam's per-coordinate scaling should reach the
  // optimum in far fewer steps at a stable lr.
  auto run = [](bool adam) {
    Param p;
    p.value = Tensor({2});
    p.value[0] = 1.0f;
    p.value[1] = 1.0f;
    p.grad = Tensor({2}, 0.0f);
    Adam a({&p}, 0.05f);
    Sgd s({&p}, 0.002f);
    for (int step = 0; step < 300; ++step) {
      p.grad[0] = 200.0f * p.value[0];
      p.grad[1] = 2.0f * p.value[1];
      if (adam) {
        a.step();
      } else {
        s.step();
      }
      p.grad.fill(0.0f);
    }
    return std::fabs(p.value[0]) + std::fabs(p.value[1]);
  };
  EXPECT_LT(run(true), run(false));
}

TEST(OptimTest, ClipGradNormScalesDown) {
  Param p;
  p.value = Tensor({2}, 0.0f);
  p.grad = Tensor({2});
  p.grad[0] = 3.0f;
  p.grad[1] = 4.0f;  // norm 5
  Adam opt({&p}, 0.1f);
  const float norm = opt.clip_grad_norm(1.0f);
  EXPECT_NEAR(norm, 5.0f, 1e-5);
  EXPECT_NEAR(std::hypot(p.grad[0], p.grad[1]), 1.0f, 1e-5);
}

TEST(OptimTest, ClipGradNormNoopBelowThreshold) {
  Param p;
  p.value = Tensor({1}, 0.0f);
  p.grad = Tensor({1});
  p.grad[0] = 0.5f;
  Adam opt({&p}, 0.1f);
  opt.clip_grad_norm(1.0f);
  EXPECT_FLOAT_EQ(p.grad[0], 0.5f);
}

TEST(OptimTest, SgdStepDirection) {
  Param p;
  p.value = Tensor({1}, 1.0f);
  p.grad = Tensor({1});
  p.grad[0] = 2.0f;
  Sgd opt({&p}, 0.25f);
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.5f);
}

}  // namespace
}  // namespace cp::nn
