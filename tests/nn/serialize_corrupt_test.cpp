// Corrupted-input robustness of the on-disk parameter format
// (docs/ROBUSTNESS.md): truncated, bit-flipped, or zero-filled files must
// always be rejected with a clean std::runtime_error — never a crash, hang,
// or a silently garbage-initialized model. Runs under ASan/UBSan via the
// CHATPATTERN_ASAN/UBSAN build options.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/serialize.h"
#include "util/fault.h"
#include "util/fs.h"
#include "util/rng.h"

namespace cp::nn {
namespace {

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

void overwrite(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

struct ParamFixture {
  Param w, b;
  std::vector<Param*> params() { return {&w, &b}; }
};

ParamFixture make_fixture(std::uint64_t seed) {
  util::Rng rng(seed);
  ParamFixture f;
  f.w.value = Tensor::randn({8, 8}, rng);
  f.b.value = Tensor::randn({8}, rng);
  return f;
}

/// load_params_file under corruption must either throw std::runtime_error or
/// (when a flip happens to land benignly) succeed cleanly; and on failure the
/// target params must not be trusted by the caller anyway.
void expect_clean_failure_or_load(const std::string& path, const std::string& what) {
  ParamFixture target = make_fixture(999);
  try {
    (void)load_params_file(path, target.params());
  } catch (const std::runtime_error&) {
    // expected failure mode
  } catch (...) {
    FAIL() << what << ": escaped with a non-runtime_error exception";
  }
}

TEST(SerializeCorruptTest, RoundTripBaseline) {
  ParamFixture saved = make_fixture(1);
  const std::string path = temp_path("params_base.bin");
  save_params_file(path, saved.params());

  ParamFixture loaded = make_fixture(2);
  ASSERT_TRUE(load_params_file(path, loaded.params()));
  for (std::size_t i = 0; i < saved.w.value.numel(); ++i) {
    ASSERT_FLOAT_EQ(loaded.w.value[i], saved.w.value[i]);
  }
  EXPECT_FALSE(load_params_file(temp_path("params_missing.bin"), loaded.params()));
  std::remove(path.c_str());
}

TEST(SerializeCorruptTest, TruncationAtEveryPrefixLength) {
  ParamFixture saved = make_fixture(3);
  const std::string path = temp_path("params_trunc.bin");
  save_params_file(path, saved.params());
  const std::string original = util::read_file(path);
  const std::string victim = temp_path("params_trunc_victim.bin");
  for (std::size_t len = 0; len + 1 < original.size(); len += 5) {
    overwrite(victim, original.substr(0, len));
    ParamFixture target = make_fixture(4);
    EXPECT_THROW((void)load_params_file(victim, target.params()), std::runtime_error)
        << "truncate to " << len << " bytes must be rejected";
  }
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(SerializeCorruptTest, BitFlipAtEveryByte) {
  ParamFixture saved = make_fixture(5);
  const std::string path = temp_path("params_flip.bin");
  save_params_file(path, saved.params());
  const std::string original = util::read_file(path);
  const std::string victim = temp_path("params_flip_victim.bin");
  // With the CRC trailer present, every single-bit payload flip must throw
  // (a flip inside the trailer itself also breaks the checksum match).
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    std::string mutated = original;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x01);
    overwrite(victim, mutated);
    ParamFixture target = make_fixture(6);
    EXPECT_THROW((void)load_params_file(victim, target.params()), std::runtime_error)
        << "bit flip at byte " << pos << " must be rejected";
  }
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(SerializeCorruptTest, ZeroFilledRegions) {
  ParamFixture saved = make_fixture(7);
  const std::string path = temp_path("params_zero.bin");
  save_params_file(path, saved.params());
  const std::string original = util::read_file(path);
  const std::string victim = temp_path("params_zero_victim.bin");
  for (std::size_t start = 0; start + 16 <= original.size(); start += 16) {
    std::string mutated = original;
    for (std::size_t i = start; i < start + 16; ++i) mutated[i] = '\0';
    overwrite(victim, mutated);
    ParamFixture target = make_fixture(8);
    EXPECT_THROW((void)load_params_file(victim, target.params()), std::runtime_error)
        << "zero-fill at byte " << start << " must be rejected";
  }
  overwrite(victim, std::string(original.size(), '\0'));
  expect_clean_failure_or_load(victim, "all zeros");
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(SerializeCorruptTest, TrailerlessLegacyFileStillLoads) {
  ParamFixture saved = make_fixture(9);
  const std::string path = temp_path("params_legacy.bin");
  save_params_file(path, saved.params());
  // Strip the CRC trailer to emulate a file written before this format
  // revision; the reader must still accept it.
  std::string data = util::read_file(path);
  ASSERT_TRUE(util::strip_crc_trailer(data, "test"));
  overwrite(path, data);
  ParamFixture loaded = make_fixture(10);
  ASSERT_TRUE(load_params_file(path, loaded.params()));
  for (std::size_t i = 0; i < saved.b.value.numel(); ++i) {
    ASSERT_FLOAT_EQ(loaded.b.value[i], saved.b.value[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeCorruptTest, InjectedWriteFaultLeavesOldParamsIntact) {
  ParamFixture first = make_fixture(11);
  const std::string path = temp_path("params_fault.bin");
  save_params_file(path, first.params());

  ParamFixture second = make_fixture(12);
  util::fault::configure("io/write=once:1");
  EXPECT_THROW(save_params_file(path, second.params()), util::fault::FaultInjected);
  util::fault::clear();

  // The aborted save must not have torn the previous file.
  ParamFixture loaded = make_fixture(13);
  ASSERT_TRUE(load_params_file(path, loaded.params()));
  for (std::size_t i = 0; i < first.w.value.numel(); ++i) {
    ASSERT_FLOAT_EQ(loaded.w.value[i], first.w.value[i]);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cp::nn
