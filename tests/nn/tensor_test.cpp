#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace cp::nn {
namespace {

TEST(TensorTest, ShapeAndFill) {
  Tensor t({2, 3}, 1.5f);
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_FLOAT_EQ(t[5], 1.5f);
  t.fill(0.0f);
  EXPECT_FLOAT_EQ(t[0], 0.0f);
  EXPECT_EQ(t.shape_string(), "[2,3]");
}

TEST(TensorTest, At2D) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t[5], 7.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 7.0f);
}

TEST(TensorTest, At4D) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_FLOAT_EQ(t[t.numel() - 1], 9.0f);
}

TEST(TensorTest, RandnStatistics) {
  util::Rng rng(1);
  Tensor t = Tensor::randn({100, 100}, rng, 2.0f);
  double sum = 0, sq = 0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  EXPECT_NEAR(sum / t.numel(), 0.0, 0.05);
  EXPECT_NEAR(sq / t.numel(), 4.0, 0.2);
}

TEST(TensorTest, AddScaled) {
  Tensor a({2, 2}, 1.0f);
  Tensor b({2, 2}, 3.0f);
  a.add_scaled(b, 2.0f);
  EXPECT_FLOAT_EQ(a[0], 7.0f);
  Tensor c({3});
  EXPECT_THROW(a.add_scaled(c, 1.0f), std::invalid_argument);
}

TEST(TensorTest, NegativeDimThrows) {
  EXPECT_THROW(Tensor({-1, 3}), std::invalid_argument);
}

TEST(TensorTest, LinearForwardMatchesManual) {
  // y = x W^T + b with known numbers.
  Tensor x({1, 2});
  x[0] = 1.0f;
  x[1] = 2.0f;
  Tensor w({2, 2});  // out=2, in=2
  w[0] = 1.0f;  // w[0][0]
  w[1] = 0.5f;  // w[0][1]
  w[2] = -1.0f; // w[1][0]
  w[3] = 2.0f;  // w[1][1]
  Tensor b({2});
  b[0] = 0.25f;
  b[1] = -0.5f;
  const Tensor y = linear_forward(x, w, b);
  EXPECT_FLOAT_EQ(y[0], 1.0f * 1.0f + 2.0f * 0.5f + 0.25f);
  EXPECT_FLOAT_EQ(y[1], 1.0f * -1.0f + 2.0f * 2.0f - 0.5f);
}

TEST(TensorTest, LinearForwardShapeChecks) {
  Tensor x({1, 3});
  Tensor w({2, 2});
  Tensor b({2});
  EXPECT_THROW(linear_forward(x, w, b), std::invalid_argument);
}

}  // namespace
}  // namespace cp::nn
