#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace cp::nn {
namespace {

// The kernels' contract is *bit*-identity with the naive loops (the goldens
// and the parallel-vs-serial determinism suites depend on it), so every
// comparison here is exact equality, never a tolerance.

struct Shape {
  int n, in, out;
};

// Odd, prime-ish and chunk-straddling shapes: below/at/above the vector
// dispatch threshold and the 8-wide chunk boundary, plus a large odd case.
const Shape kShapes[] = {
    {1, 1, 1},   {1, 7, 5},    {2, 3, 8},    {3, 8, 9},     {4, 16, 16},
    {5, 23, 64}, {7, 13, 31},  {1, 64, 1},   {9, 17, 257},  {257, 129, 33},
};

std::vector<float> randn(std::size_t n, util::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, 1.0));
  return v;
}

TEST(GemmTest, PackedForwardBitIdenticalToNaive) {
  util::Rng rng(11);
  for (const Shape& s : kShapes) {
    const auto x = randn(static_cast<std::size_t>(s.n) * s.in, rng);
    const auto w = randn(static_cast<std::size_t>(s.out) * s.in, rng);
    const auto b = randn(static_cast<std::size_t>(s.out), rng);
    std::vector<float> wt(static_cast<std::size_t>(s.in) * s.out);
    gemm::pack_wt(s.in, s.out, w.data(), wt.data());

    std::vector<float> y_naive(static_cast<std::size_t>(s.n) * s.out);
    std::vector<float> y_packed(y_naive.size());
    gemm::forward_naive(s.n, s.in, s.out, x.data(), w.data(), b.data(), y_naive.data());
    gemm::forward_packed(s.n, s.in, s.out, x.data(), wt.data(), b.data(), y_packed.data());
    for (std::size_t i = 0; i < y_naive.size(); ++i) {
      ASSERT_EQ(y_naive[i], y_packed[i])
          << "n=" << s.n << " in=" << s.in << " out=" << s.out << " at " << i;
    }
  }
}

TEST(GemmTest, BackwardDxMatchesReferenceLoopExactly) {
  util::Rng rng(12);
  for (const Shape& s : kShapes) {
    const auto g = randn(static_cast<std::size_t>(s.n) * s.out, rng);
    const auto w = randn(static_cast<std::size_t>(s.out) * s.in, rng);

    // The pre-blocking Linear::backward input-gradient loop, verbatim.
    std::vector<float> ref(static_cast<std::size_t>(s.n) * s.in, 0.0f);
    for (int i = 0; i < s.n; ++i) {
      const float* gi = g.data() + static_cast<std::size_t>(i) * s.out;
      float* di = ref.data() + static_cast<std::size_t>(i) * s.in;
      for (int o = 0; o < s.out; ++o) {
        const float* wo = w.data() + static_cast<std::size_t>(o) * s.in;
        for (int k = 0; k < s.in; ++k) di[k] += gi[o] * wo[k];
      }
    }

    std::vector<float> dx(ref.size());
    gemm::backward_dx(s.n, s.in, s.out, g.data(), w.data(), dx.data());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], dx[i])
          << "n=" << s.n << " in=" << s.in << " out=" << s.out << " at " << i;
    }
  }
}

TEST(GemmTest, BackwardAccumMatchesReferenceLoopExactly) {
  util::Rng rng(13);
  for (const Shape& s : kShapes) {
    const auto g = randn(static_cast<std::size_t>(s.n) * s.out, rng);
    const auto x = randn(static_cast<std::size_t>(s.n) * s.in, rng);
    // Accumulation must *add* to existing gradients; start from a nonzero
    // state to check that too.
    const auto seed = randn(static_cast<std::size_t>(s.out) * s.in, rng);
    const auto bseed = randn(static_cast<std::size_t>(s.out), rng);

    // The pre-blocking Linear::backward parameter-gradient loop, verbatim.
    std::vector<float> dw_ref = seed;
    std::vector<float> db_ref = bseed;
    for (int i = 0; i < s.n; ++i) {
      const float* xi = x.data() + static_cast<std::size_t>(i) * s.in;
      const float* gi = g.data() + static_cast<std::size_t>(i) * s.out;
      for (int o = 0; o < s.out; ++o) {
        float* wo = dw_ref.data() + static_cast<std::size_t>(o) * s.in;
        for (int k = 0; k < s.in; ++k) wo[k] += gi[o] * xi[k];
        db_ref[static_cast<std::size_t>(o)] += gi[o];
      }
    }

    std::vector<float> dw = seed;
    std::vector<float> db = bseed;
    gemm::backward_accum(s.n, s.in, s.out, g.data(), x.data(), dw.data(), db.data());
    for (std::size_t i = 0; i < dw_ref.size(); ++i) {
      ASSERT_EQ(dw_ref[i], dw[i]) << "dw mismatch at " << i;
    }
    for (std::size_t i = 0; i < db_ref.size(); ++i) {
      ASSERT_EQ(db_ref[i], db[i]) << "db mismatch at " << i;
    }
  }
}

TEST(GemmTest, LinearForwardDispatchesBitIdenticallyForAllShapes) {
  util::Rng rng(14);
  for (const Shape& s : kShapes) {
    Tensor x = Tensor::randn({s.n, s.in}, rng);
    Tensor w = Tensor::randn({s.out, s.in}, rng);
    Tensor b = Tensor::randn({s.out}, rng);
    const Tensor y = linear_forward(x, w, b);
    std::vector<float> ref(static_cast<std::size_t>(s.n) * s.out);
    gemm::forward_naive(s.n, s.in, s.out, x.data(), w.data(), b.data(), ref.data());
    ASSERT_EQ(y.numel(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], y[i])
          << "n=" << s.n << " in=" << s.in << " out=" << s.out << " at " << i;
    }
  }
}

/// Restores the process-wide SIMD dispatch switch no matter how the test
/// exits; other suites in this binary assume the default (enabled).
struct SimdGuard {
  ~SimdGuard() { gemm::set_simd_enabled(true); }
};

TEST(GemmTest, WideKernelBitIdenticalAcrossSimdToggle) {
  // The 16-wide AVX2 fp32 tile must produce the same bits as the portable
  // 8-wide kernel for every shape — on a machine without AVX2 both runs take
  // the portable path and the test degenerates to a self-comparison.
  SimdGuard guard;
  util::Rng rng(16);
  for (const Shape& s : kShapes) {
    const auto x = randn(static_cast<std::size_t>(s.n) * s.in, rng);
    const auto w = randn(static_cast<std::size_t>(s.out) * s.in, rng);
    const auto b = randn(static_cast<std::size_t>(s.out), rng);
    std::vector<float> wt(static_cast<std::size_t>(s.in) * s.out);
    gemm::pack_wt(s.in, s.out, w.data(), wt.data());

    std::vector<float> y_scalar(static_cast<std::size_t>(s.n) * s.out);
    std::vector<float> y_simd(y_scalar.size());
    gemm::set_simd_enabled(false);
    gemm::forward_packed(s.n, s.in, s.out, x.data(), wt.data(), b.data(), y_scalar.data());
    gemm::set_simd_enabled(true);
    gemm::forward_packed(s.n, s.in, s.out, x.data(), wt.data(), b.data(), y_simd.data());
    for (std::size_t i = 0; i < y_scalar.size(); ++i) {
      ASSERT_EQ(y_scalar[i], y_simd[i])
          << "n=" << s.n << " in=" << s.in << " out=" << s.out << " at " << i;
    }
  }
}

TEST(GemmTest, QuantizedKernelsScalarAvx2BitIdentical) {
  // The int8 tier's determinism contract: integer GEMM is exact arithmetic
  // and the epilogues round identically (lrintf vs hardware RNE), so the
  // scalar fallback and the AVX2 kernels must agree bit-for-bit — including
  // the requantized int16 activations and the per-row scales.
  SimdGuard guard;
  util::Rng rng(17);
  for (const Shape& s : kShapes) {
    const auto x = randn(static_cast<std::size_t>(s.n) * s.in, rng);
    const auto w = randn(static_cast<std::size_t>(s.out) * s.in, rng);
    const auto b = randn(static_cast<std::size_t>(s.out), rng);
    gemm::QuantizedPack pack;
    gemm::quantize_weights(s.in, s.out, w.data(), b.data(), pack);
    ASSERT_EQ(pack.pin % 2, 0);
    ASSERT_EQ(pack.pout % 8, 0);
    std::vector<std::int16_t> qx(static_cast<std::size_t>(s.n) * pack.pin);
    std::vector<float> rs(static_cast<std::size_t>(s.n));
    gemm::quantize_rows(s.n, s.in, pack.pin, x.data(), qx.data(), rs.data());

    std::vector<std::int32_t> acc_scalar(static_cast<std::size_t>(s.n) * pack.pout);
    std::vector<std::int32_t> acc_simd(acc_scalar.size());
    gemm::set_simd_enabled(false);
    gemm::forward_quantized(s.n, pack.pin, pack.pout, qx.data(), pack.wq.data(),
                            acc_scalar.data());
    gemm::set_simd_enabled(true);
    gemm::forward_quantized(s.n, pack.pin, pack.pout, qx.data(), pack.wq.data(),
                            acc_simd.data());
    for (std::size_t i = 0; i < acc_scalar.size(); ++i) {
      ASSERT_EQ(acc_scalar[i], acc_simd[i]) << "acc mismatch at " << i;
    }

    std::vector<float> vtmp(static_cast<std::size_t>(pack.pout));
    for (gemm::QuantAct act : {gemm::QuantAct::kSiluFast, gemm::QuantAct::kRelu}) {
      std::vector<std::int16_t> qy_scalar(static_cast<std::size_t>(s.n) * pack.pout);
      std::vector<std::int16_t> qy_simd(qy_scalar.size());
      std::vector<float> rs_scalar(static_cast<std::size_t>(s.n)), rs_simd(rs_scalar.size());
      gemm::set_simd_enabled(false);
      gemm::epilogue_act_quant(act, s.n, pack.pout, acc_scalar.data(), rs.data(),
                               pack.scale.data(), pack.bias.data(), vtmp.data(),
                               qy_scalar.data(), rs_scalar.data());
      gemm::set_simd_enabled(true);
      gemm::epilogue_act_quant(act, s.n, pack.pout, acc_scalar.data(), rs.data(),
                               pack.scale.data(), pack.bias.data(), vtmp.data(),
                               qy_simd.data(), rs_simd.data());
      for (std::size_t i = 0; i < qy_scalar.size(); ++i) {
        ASSERT_EQ(qy_scalar[i], qy_simd[i]) << "qy mismatch at " << i;
      }
      for (std::size_t i = 0; i < rs_scalar.size(); ++i) {
        ASSERT_EQ(rs_scalar[i], rs_simd[i]) << "rs mismatch at " << i;
      }
    }

    std::vector<float> y_scalar(static_cast<std::size_t>(s.n) * s.out);
    std::vector<float> y_simd(y_scalar.size());
    gemm::set_simd_enabled(false);
    gemm::epilogue_dequant(s.n, pack.pout, s.out, acc_scalar.data(), rs.data(),
                           pack.scale.data(), pack.bias.data(), y_scalar.data());
    gemm::set_simd_enabled(true);
    gemm::epilogue_dequant(s.n, pack.pout, s.out, acc_scalar.data(), rs.data(),
                           pack.scale.data(), pack.bias.data(), y_simd.data());
    for (std::size_t i = 0; i < y_scalar.size(); ++i) {
      ASSERT_EQ(y_scalar[i], y_simd[i]) << "dequant mismatch at " << i;
    }
  }
}

TEST(GemmTest, QuantizedLinearApproximatesFp32) {
  // Accuracy (not identity): one quantized Linear must track the fp32 result
  // within the expected per-channel-symmetric-int8 error envelope.
  util::Rng rng(18);
  for (const Shape& s : kShapes) {
    const auto x = randn(static_cast<std::size_t>(s.n) * s.in, rng);
    const auto w = randn(static_cast<std::size_t>(s.out) * s.in, rng);
    const auto b = randn(static_cast<std::size_t>(s.out), rng);
    std::vector<float> y_ref(static_cast<std::size_t>(s.n) * s.out);
    gemm::forward_naive(s.n, s.in, s.out, x.data(), w.data(), b.data(), y_ref.data());

    gemm::QuantizedPack pack;
    gemm::quantize_weights(s.in, s.out, w.data(), b.data(), pack);
    std::vector<std::int16_t> qx(static_cast<std::size_t>(s.n) * pack.pin);
    std::vector<float> rs(static_cast<std::size_t>(s.n));
    gemm::quantize_rows(s.n, s.in, pack.pin, x.data(), qx.data(), rs.data());
    std::vector<std::int32_t> acc(static_cast<std::size_t>(s.n) * pack.pout);
    gemm::forward_quantized(s.n, pack.pin, pack.pout, qx.data(), pack.wq.data(), acc.data());
    std::vector<float> y_q(y_ref.size());
    gemm::epilogue_dequant(s.n, pack.pout, s.out, acc.data(), rs.data(), pack.scale.data(),
                           pack.bias.data(), y_q.data());

    // Two rounding steps of ~1/254 each on |x|,|w| <= absmax accumulate over
    // `in` products; scale the bound with sqrt(in) and the data magnitude.
    float max_abs = 1.0f;
    for (float v : y_ref) max_abs = std::max(max_abs, std::abs(v));
    const float tol = 0.02f * max_abs * std::sqrt(static_cast<float>(s.in));
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      ASSERT_NEAR(y_ref[i], y_q[i], tol)
          << "n=" << s.n << " in=" << s.in << " out=" << s.out << " at " << i;
    }
  }
}

TEST(GemmTest, QuantizeRowsHandlesZeroAndPadding) {
  const int n = 2, in = 3, pin = gemm::quant_pad(in);
  EXPECT_EQ(pin, 8);
  const float x[n * in] = {0.0f, 0.0f, 0.0f, 1.0f, -2.0f, 0.5f};
  std::vector<std::int16_t> qx(static_cast<std::size_t>(n) * pin, 99);
  float rs[n];
  gemm::quantize_rows(n, in, pin, x, qx.data(), rs);
  // All-zero row: zero scale, zero lanes (the kernel contributes nothing).
  EXPECT_EQ(rs[0], 0.0f);
  for (int k = 0; k < pin; ++k) EXPECT_EQ(qx[static_cast<std::size_t>(k)], 0);
  // Regular row: absmax lane hits +/-127 exactly, padding lanes are zeroed.
  EXPECT_EQ(rs[1], 2.0f / 127.0f);
  EXPECT_EQ(qx[static_cast<std::size_t>(pin) + 1], -127);
  for (int k = in; k < pin; ++k) EXPECT_EQ(qx[static_cast<std::size_t>(pin) + k], 0);
}

TEST(GemmTest, PackWtIsTranspose) {
  util::Rng rng(15);
  const int in = 5, out = 9;
  const auto w = randn(static_cast<std::size_t>(out) * in, rng);
  std::vector<float> wt(w.size());
  gemm::pack_wt(in, out, w.data(), wt.data());
  for (int o = 0; o < out; ++o) {
    for (int k = 0; k < in; ++k) {
      EXPECT_EQ(w[static_cast<std::size_t>(o) * in + k],
                wt[static_cast<std::size_t>(k) * out + o]);
    }
  }
}

}  // namespace
}  // namespace cp::nn
