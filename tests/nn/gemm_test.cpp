#include "nn/gemm.h"

#include <gtest/gtest.h>

#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace cp::nn {
namespace {

// The kernels' contract is *bit*-identity with the naive loops (the goldens
// and the parallel-vs-serial determinism suites depend on it), so every
// comparison here is exact equality, never a tolerance.

struct Shape {
  int n, in, out;
};

// Odd, prime-ish and chunk-straddling shapes: below/at/above the vector
// dispatch threshold and the 8-wide chunk boundary, plus a large odd case.
const Shape kShapes[] = {
    {1, 1, 1},   {1, 7, 5},    {2, 3, 8},    {3, 8, 9},     {4, 16, 16},
    {5, 23, 64}, {7, 13, 31},  {1, 64, 1},   {9, 17, 257},  {257, 129, 33},
};

std::vector<float> randn(std::size_t n, util::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, 1.0));
  return v;
}

TEST(GemmTest, PackedForwardBitIdenticalToNaive) {
  util::Rng rng(11);
  for (const Shape& s : kShapes) {
    const auto x = randn(static_cast<std::size_t>(s.n) * s.in, rng);
    const auto w = randn(static_cast<std::size_t>(s.out) * s.in, rng);
    const auto b = randn(static_cast<std::size_t>(s.out), rng);
    std::vector<float> wt(static_cast<std::size_t>(s.in) * s.out);
    gemm::pack_wt(s.in, s.out, w.data(), wt.data());

    std::vector<float> y_naive(static_cast<std::size_t>(s.n) * s.out);
    std::vector<float> y_packed(y_naive.size());
    gemm::forward_naive(s.n, s.in, s.out, x.data(), w.data(), b.data(), y_naive.data());
    gemm::forward_packed(s.n, s.in, s.out, x.data(), wt.data(), b.data(), y_packed.data());
    for (std::size_t i = 0; i < y_naive.size(); ++i) {
      ASSERT_EQ(y_naive[i], y_packed[i])
          << "n=" << s.n << " in=" << s.in << " out=" << s.out << " at " << i;
    }
  }
}

TEST(GemmTest, BackwardDxMatchesReferenceLoopExactly) {
  util::Rng rng(12);
  for (const Shape& s : kShapes) {
    const auto g = randn(static_cast<std::size_t>(s.n) * s.out, rng);
    const auto w = randn(static_cast<std::size_t>(s.out) * s.in, rng);

    // The pre-blocking Linear::backward input-gradient loop, verbatim.
    std::vector<float> ref(static_cast<std::size_t>(s.n) * s.in, 0.0f);
    for (int i = 0; i < s.n; ++i) {
      const float* gi = g.data() + static_cast<std::size_t>(i) * s.out;
      float* di = ref.data() + static_cast<std::size_t>(i) * s.in;
      for (int o = 0; o < s.out; ++o) {
        const float* wo = w.data() + static_cast<std::size_t>(o) * s.in;
        for (int k = 0; k < s.in; ++k) di[k] += gi[o] * wo[k];
      }
    }

    std::vector<float> dx(ref.size());
    gemm::backward_dx(s.n, s.in, s.out, g.data(), w.data(), dx.data());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], dx[i])
          << "n=" << s.n << " in=" << s.in << " out=" << s.out << " at " << i;
    }
  }
}

TEST(GemmTest, BackwardAccumMatchesReferenceLoopExactly) {
  util::Rng rng(13);
  for (const Shape& s : kShapes) {
    const auto g = randn(static_cast<std::size_t>(s.n) * s.out, rng);
    const auto x = randn(static_cast<std::size_t>(s.n) * s.in, rng);
    // Accumulation must *add* to existing gradients; start from a nonzero
    // state to check that too.
    const auto seed = randn(static_cast<std::size_t>(s.out) * s.in, rng);
    const auto bseed = randn(static_cast<std::size_t>(s.out), rng);

    // The pre-blocking Linear::backward parameter-gradient loop, verbatim.
    std::vector<float> dw_ref = seed;
    std::vector<float> db_ref = bseed;
    for (int i = 0; i < s.n; ++i) {
      const float* xi = x.data() + static_cast<std::size_t>(i) * s.in;
      const float* gi = g.data() + static_cast<std::size_t>(i) * s.out;
      for (int o = 0; o < s.out; ++o) {
        float* wo = dw_ref.data() + static_cast<std::size_t>(o) * s.in;
        for (int k = 0; k < s.in; ++k) wo[k] += gi[o] * xi[k];
        db_ref[static_cast<std::size_t>(o)] += gi[o];
      }
    }

    std::vector<float> dw = seed;
    std::vector<float> db = bseed;
    gemm::backward_accum(s.n, s.in, s.out, g.data(), x.data(), dw.data(), db.data());
    for (std::size_t i = 0; i < dw_ref.size(); ++i) {
      ASSERT_EQ(dw_ref[i], dw[i]) << "dw mismatch at " << i;
    }
    for (std::size_t i = 0; i < db_ref.size(); ++i) {
      ASSERT_EQ(db_ref[i], db[i]) << "db mismatch at " << i;
    }
  }
}

TEST(GemmTest, LinearForwardDispatchesBitIdenticallyForAllShapes) {
  util::Rng rng(14);
  for (const Shape& s : kShapes) {
    Tensor x = Tensor::randn({s.n, s.in}, rng);
    Tensor w = Tensor::randn({s.out, s.in}, rng);
    Tensor b = Tensor::randn({s.out}, rng);
    const Tensor y = linear_forward(x, w, b);
    std::vector<float> ref(static_cast<std::size_t>(s.n) * s.out);
    gemm::forward_naive(s.n, s.in, s.out, x.data(), w.data(), b.data(), ref.data());
    ASSERT_EQ(y.numel(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], y[i])
          << "n=" << s.n << " in=" << s.in << " out=" << s.out << " at " << i;
    }
  }
}

TEST(GemmTest, PackWtIsTranspose) {
  util::Rng rng(15);
  const int in = 5, out = 9;
  const auto w = randn(static_cast<std::size_t>(out) * in, rng);
  std::vector<float> wt(w.size());
  gemm::pack_wt(in, out, w.data(), wt.data());
  for (int o = 0; o < out; ++o) {
    for (int k = 0; k < in; ++k) {
      EXPECT_EQ(w[static_cast<std::size_t>(o) * in + k],
                wt[static_cast<std::size_t>(k) * out + o]);
    }
  }
}

}  // namespace
}  // namespace cp::nn
