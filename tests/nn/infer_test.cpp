#include <gtest/gtest.h>

#include <memory>

#include "nn/layers.h"
#include "nn/optim.h"

namespace cp::nn {
namespace {

// The stateless infer() path must match the stateful forward() path
// bit-for-bit — that is what lets the MLP denoiser advertise thread-safe
// inference without changing a single sampled pattern.

void expect_bit_equal(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what << ": shape " << a.shape_string() << " vs "
                               << b.shape_string();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " differs at " << i;
  }
}

void check_infer_matches_forward(Layer& layer, const Tensor& x, const char* what) {
  Workspace ws;
  const Tensor y_forward = layer.forward(x);
  Tensor y_infer;
  layer.infer(x, y_infer, ws);
  expect_bit_equal(y_forward, y_infer, what);
  // Second call with the warm workspace: buffers are reused, result unchanged.
  layer.infer(x, y_infer, ws);
  expect_bit_equal(y_forward, y_infer, what);
}

TEST(InferTest, LinearVectorPath) {
  util::Rng rng(21);
  Linear layer(23, 64, rng);  // out >= kVecMinOut: packed kernel
  check_infer_matches_forward(layer, Tensor::randn({5, 23}, rng), "Linear(23,64)");
}

TEST(InferTest, LinearNaivePath) {
  util::Rng rng(22);
  Linear layer(16, 3, rng);  // out < kVecMinOut: naive kernel
  check_infer_matches_forward(layer, Tensor::randn({4, 16}, rng), "Linear(16,3)");
}

TEST(InferTest, Activations) {
  util::Rng rng(23);
  const Tensor x = Tensor::randn({3, 17}, rng);
  ReLU relu;
  check_infer_matches_forward(relu, x, "ReLU");
  SiLU silu;
  check_infer_matches_forward(silu, x, "SiLU");
  Sigmoid sigmoid;
  check_infer_matches_forward(sigmoid, x, "Sigmoid");
}

TEST(InferTest, Conv2d) {
  util::Rng rng(24);
  Conv2d conv(2, 9, 3, rng);
  check_infer_matches_forward(conv, Tensor::randn({2, 2, 6, 7}, rng), "Conv2d(2,9,3)");
  Conv2d small(3, 4, 5, rng);  // out_ch < kVecMinOut
  check_infer_matches_forward(small, Tensor::randn({1, 3, 8, 5}, rng), "Conv2d(3,4,5)");
}

Sequential make_mlp(util::Rng& rng) {
  Sequential net;
  net.add(std::make_unique<Linear>(23, 64, rng));
  net.add(std::make_unique<SiLU>());
  net.add(std::make_unique<Linear>(64, 64, rng));
  net.add(std::make_unique<SiLU>());
  net.add(std::make_unique<Linear>(64, 1, rng));
  return net;
}

TEST(InferTest, SequentialMatchesForward) {
  util::Rng rng(25);
  Sequential net = make_mlp(rng);
  for (int n : {1, 4, 33}) {
    const Tensor x = Tensor::randn({n, 23}, rng);
    const Tensor y_forward = net.forward(x);
    Workspace ws;
    expect_bit_equal(y_forward, net.infer(x, ws), "Sequential");
  }
}

TEST(InferTest, WorkspaceReuseAcrossBatchSizesIsSafe) {
  util::Rng rng(26);
  Sequential net = make_mlp(rng);
  Workspace ws;
  // Shrinking and growing batch sizes through one workspace must keep
  // producing forward()-exact results (buffers resize, never stale).
  for (int n : {16, 1, 7, 16, 2}) {
    const Tensor x = Tensor::randn({n, 23}, rng);
    expect_bit_equal(net.forward(x), net.infer(x, ws), "Sequential reuse");
  }
}

TEST(InferTest, PackedWeightCacheInvalidatesAfterOptimizerStep) {
  util::Rng rng(27);
  Sequential net = make_mlp(rng);
  Workspace ws;
  const Tensor x = Tensor::randn({3, 23}, rng);
  expect_bit_equal(net.forward(x), net.infer(x, ws), "before step");

  // Fabricate a gradient and take an optimizer step: every Param's version
  // bumps, so the workspace must repack and track the new weights.
  net.zero_grad();
  Tensor g({3, 1}, 1.0f);
  net.backward(g);
  Adam opt(net.params(), 0.05f);
  opt.step();

  expect_bit_equal(net.forward(x), net.infer(x, ws), "after Adam step");

  // And after loading weights via Param assignment + bump (the serializer
  // path): mutate one weight directly and bump its version.
  Param* p = net.params().front();
  p->value[0] += 1.0f;
  p->bump_version();
  expect_bit_equal(net.forward(x), net.infer(x, ws), "after manual bump");
}

TEST(InferTest, SequentialParamsCacheTracksAdd) {
  util::Rng rng(28);
  Sequential net;
  net.add(std::make_unique<Linear>(4, 8, rng));
  EXPECT_EQ(net.params().size(), 2u);
  net.add(std::make_unique<SiLU>());
  net.add(std::make_unique<Linear>(8, 2, rng));
  EXPECT_EQ(net.params().size(), 4u);
  // Same vector object back (cached), not a fresh copy per call.
  EXPECT_EQ(&net.params(), &net.params());
}

TEST(InferTest, EmptySequentialIsIdentity) {
  util::Rng rng(29);
  Sequential net;
  Workspace ws;
  const Tensor x = Tensor::randn({2, 3}, rng);
  expect_bit_equal(x, net.infer(x, ws), "empty Sequential");
}

}  // namespace
}  // namespace cp::nn
