#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <vector>

#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/serialize.h"

namespace cp::nn {
namespace {

// The stateless infer() path must match the stateful forward() path
// bit-for-bit — that is what lets the MLP denoiser advertise thread-safe
// inference without changing a single sampled pattern.

void expect_bit_equal(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what << ": shape " << a.shape_string() << " vs "
                               << b.shape_string();
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " differs at " << i;
  }
}

void check_infer_matches_forward(Layer& layer, const Tensor& x, const char* what) {
  Workspace ws;
  const Tensor y_forward = layer.forward(x);
  Tensor y_infer;
  layer.infer(x, y_infer, ws);
  expect_bit_equal(y_forward, y_infer, what);
  // Second call with the warm workspace: buffers are reused, result unchanged.
  layer.infer(x, y_infer, ws);
  expect_bit_equal(y_forward, y_infer, what);
}

TEST(InferTest, LinearVectorPath) {
  util::Rng rng(21);
  Linear layer(23, 64, rng);  // out >= kVecMinOut: packed kernel
  check_infer_matches_forward(layer, Tensor::randn({5, 23}, rng), "Linear(23,64)");
}

TEST(InferTest, LinearNaivePath) {
  util::Rng rng(22);
  Linear layer(16, 3, rng);  // out < kVecMinOut: naive kernel
  check_infer_matches_forward(layer, Tensor::randn({4, 16}, rng), "Linear(16,3)");
}

TEST(InferTest, Activations) {
  util::Rng rng(23);
  const Tensor x = Tensor::randn({3, 17}, rng);
  ReLU relu;
  check_infer_matches_forward(relu, x, "ReLU");
  SiLU silu;
  check_infer_matches_forward(silu, x, "SiLU");
  Sigmoid sigmoid;
  check_infer_matches_forward(sigmoid, x, "Sigmoid");
}

TEST(InferTest, Conv2d) {
  util::Rng rng(24);
  Conv2d conv(2, 9, 3, rng);
  check_infer_matches_forward(conv, Tensor::randn({2, 2, 6, 7}, rng), "Conv2d(2,9,3)");
  Conv2d small(3, 4, 5, rng);  // out_ch < kVecMinOut
  check_infer_matches_forward(small, Tensor::randn({1, 3, 8, 5}, rng), "Conv2d(3,4,5)");
}

Sequential make_mlp(util::Rng& rng) {
  Sequential net;
  net.add(std::make_unique<Linear>(23, 64, rng));
  net.add(std::make_unique<SiLU>());
  net.add(std::make_unique<Linear>(64, 64, rng));
  net.add(std::make_unique<SiLU>());
  net.add(std::make_unique<Linear>(64, 1, rng));
  return net;
}

TEST(InferTest, SequentialMatchesForward) {
  util::Rng rng(25);
  Sequential net = make_mlp(rng);
  for (int n : {1, 4, 33}) {
    const Tensor x = Tensor::randn({n, 23}, rng);
    const Tensor y_forward = net.forward(x);
    Workspace ws;
    expect_bit_equal(y_forward, net.infer(x, ws), "Sequential");
  }
}

TEST(InferTest, WorkspaceReuseAcrossBatchSizesIsSafe) {
  util::Rng rng(26);
  Sequential net = make_mlp(rng);
  Workspace ws;
  // Shrinking and growing batch sizes through one workspace must keep
  // producing forward()-exact results (buffers resize, never stale).
  for (int n : {16, 1, 7, 16, 2}) {
    const Tensor x = Tensor::randn({n, 23}, rng);
    expect_bit_equal(net.forward(x), net.infer(x, ws), "Sequential reuse");
  }
}

TEST(InferTest, PackedWeightCacheInvalidatesAfterOptimizerStep) {
  util::Rng rng(27);
  Sequential net = make_mlp(rng);
  Workspace ws;
  const Tensor x = Tensor::randn({3, 23}, rng);
  expect_bit_equal(net.forward(x), net.infer(x, ws), "before step");

  // Fabricate a gradient and take an optimizer step: every Param's version
  // bumps, so the workspace must repack and track the new weights.
  net.zero_grad();
  Tensor g({3, 1}, 1.0f);
  net.backward(g);
  Adam opt(net.params(), 0.05f);
  opt.step();

  expect_bit_equal(net.forward(x), net.infer(x, ws), "after Adam step");

  // And after loading weights via Param assignment + bump (the serializer
  // path): mutate one weight directly and bump its version.
  Param* p = net.params().front();
  p->value[0] += 1.0f;
  p->bump_version();
  expect_bit_equal(net.forward(x), net.infer(x, ws), "after manual bump");
}

// --- int8 quantized inference (opt-in tier; DESIGN.md "Quantized
// inference"). Not bit-equal to infer(), but bit-deterministic, version-
// tracked like the packed fp32 weights, and within a small tolerance of the
// fp32 result on unit-scale inputs.

void expect_close(const Tensor& a, const Tensor& b, float tol, const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a[i], b[i], tol) << what << " differs at " << i;
  }
}

TEST(InferTest, QuantizableMatchesTheLinearActivationPattern) {
  util::Rng rng(30);
  EXPECT_TRUE(make_mlp(rng).quantizable());
  Sequential relu_net;
  relu_net.add(std::make_unique<Linear>(8, 16, rng));
  relu_net.add(std::make_unique<ReLU>());
  relu_net.add(std::make_unique<Linear>(16, 2, rng));
  EXPECT_TRUE(relu_net.quantizable());

  EXPECT_FALSE(Sequential().quantizable());
  Sequential trailing_act = make_mlp(rng);
  trailing_act.add(std::make_unique<Sigmoid>());
  EXPECT_FALSE(trailing_act.quantizable());
  Sequential conv_net;
  conv_net.add(std::make_unique<Conv2d>(2, 8, 3, rng));
  EXPECT_FALSE(conv_net.quantizable());
}

TEST(InferTest, InferQuantizedTracksInferWithinTolerance) {
  util::Rng rng(31);
  Sequential net = make_mlp(rng);
  Workspace ws;
  for (int n : {1, 4, 33}) {
    const Tensor x = Tensor::randn({n, 23}, rng);
    expect_close(net.infer(x, ws), net.infer_quantized(x, ws), 0.05f, "quantized vs fp32");
  }
}

TEST(InferTest, InferQuantizedBitDeterministicAcrossSimdToggle) {
  util::Rng rng(32);
  Sequential net = make_mlp(rng);
  const Tensor x = Tensor::randn({7, 23}, rng);
  Workspace ws_scalar, ws_simd;
  gemm::set_simd_enabled(false);
  const Tensor y_scalar = net.infer_quantized(x, ws_scalar);  // copy: ws ref is reused
  gemm::set_simd_enabled(true);
  expect_bit_equal(y_scalar, net.infer_quantized(x, ws_simd), "quantized simd toggle");
}

TEST(InferTest, InferQuantizedFallsBackWhenNotQuantizable) {
  util::Rng rng(33);
  Sequential net = make_mlp(rng);
  net.add(std::make_unique<Sigmoid>());  // trailing activation: not quantizable
  Workspace ws;
  const Tensor x = Tensor::randn({5, 23}, rng);
  const Tensor y = net.infer(x, ws);  // copy before the workspace is reused
  expect_bit_equal(y, net.infer_quantized(x, ws), "fallback to fp32");

  EXPECT_THROW(net.infer_quantized_pre(1, nullptr, nullptr, ws), std::logic_error);
}

TEST(InferTest, InferQuantizedPreMatchesFloatStaging) {
  // Callers that build int16 rows directly (the MLP denoiser's grid path)
  // must land on the same bits as the quantize_rows staging pass.
  util::Rng rng(34);
  Sequential net = make_mlp(rng);
  Workspace ws;
  const int n = 6, in = 23, pin = gemm::quant_pad(in);
  const Tensor x = Tensor::randn({n, in}, rng);
  std::vector<std::int16_t> qx(static_cast<std::size_t>(n) * pin);
  std::vector<float> rs(static_cast<std::size_t>(n));
  gemm::quantize_rows(n, in, pin, x.data(), qx.data(), rs.data());
  const Tensor y_staged = net.infer_quantized(x, ws);  // copy: ws ref is reused
  Workspace ws_pre;
  expect_bit_equal(y_staged, net.infer_quantized_pre(n, qx.data(), rs.data(), ws_pre),
                   "pre-quantized vs staged");
}

TEST(InferTest, QuantizedPackInvalidatesAfterOptimizerStep) {
  // The int8 twin of PackedWeightCacheInvalidatesAfterOptimizerStep: a warm
  // workspace must never serve a stale weight pack after the optimizer or
  // the serializer rewrites the parameters. "Fresh workspace" is the oracle:
  // it can only see the current weights.
  util::Rng rng(35);
  Sequential net = make_mlp(rng);
  Workspace ws;
  const Tensor x = Tensor::randn({3, 23}, rng);
  const Tensor y_before = net.infer_quantized(x, ws);

  net.zero_grad();
  Tensor g({3, 1}, 1.0f);
  net.forward(x);
  net.backward(g);
  Adam opt(net.params(), 0.05f);
  opt.step();

  {
    Workspace fresh;
    const Tensor y_fresh = net.infer_quantized(x, fresh);
    expect_bit_equal(y_fresh, net.infer_quantized(x, ws), "after Adam step");
    // And the step actually moved the output — a no-op update would make
    // this test vacuous.
    bool changed = false;
    for (std::size_t i = 0; i < y_fresh.numel(); ++i) changed = changed || y_fresh[i] != y_before[i];
    EXPECT_TRUE(changed);
  }

  // Serializer path: load_params overwrites values and bumps versions.
  util::Rng rng2(36);
  Sequential donor = make_mlp(rng2);
  std::stringstream blob;
  save_params(blob, donor.params());
  load_params(blob, net.params());
  {
    Workspace fresh;
    const Tensor y_fresh = net.infer_quantized(x, fresh);
    expect_bit_equal(y_fresh, net.infer_quantized(x, ws), "after load_params");
  }

  // Manual Param mutation + bump (what optimizers and loaders do internally).
  Param* p = net.params().front();
  p->value[0] += 1.0f;
  p->bump_version();
  {
    Workspace fresh;
    const Tensor y_fresh = net.infer_quantized(x, fresh);
    expect_bit_equal(y_fresh, net.infer_quantized(x, ws), "after manual bump");
  }
}

TEST(InferTest, SequentialParamsCacheTracksAdd) {
  util::Rng rng(28);
  Sequential net;
  net.add(std::make_unique<Linear>(4, 8, rng));
  EXPECT_EQ(net.params().size(), 2u);
  net.add(std::make_unique<SiLU>());
  net.add(std::make_unique<Linear>(8, 2, rng));
  EXPECT_EQ(net.params().size(), 4u);
  // Same vector object back (cached), not a fresh copy per call.
  EXPECT_EQ(&net.params(), &net.params());
}

TEST(InferTest, EmptySequentialIsIdentity) {
  util::Rng rng(29);
  Sequential net;
  Workspace ws;
  const Tensor x = Tensor::randn({2, 3}, rng);
  expect_bit_equal(x, net.infer(x, ws), "empty Sequential");
}

}  // namespace
}  // namespace cp::nn
