#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cp::nn {
namespace {

TEST(SerializeTest, TensorRoundTrip) {
  util::Rng rng(1);
  const Tensor t = Tensor::randn({3, 4, 5}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  const Tensor back = read_tensor(ss);
  ASSERT_TRUE(back.same_shape(t));
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(back[i], t[i]);
}

TEST(SerializeTest, ParamsRoundTrip) {
  util::Rng rng(2);
  Param a, b;
  a.value = Tensor::randn({4, 4}, rng);
  b.value = Tensor::randn({4}, rng);
  std::stringstream ss;
  save_params(ss, {&a, &b});

  Param a2, b2;
  a2.value = Tensor({4, 4});
  b2.value = Tensor({4});
  load_params(ss, {&a2, &b2});
  for (std::size_t i = 0; i < a.value.numel(); ++i) EXPECT_FLOAT_EQ(a2.value[i], a.value[i]);
  for (std::size_t i = 0; i < b.value.numel(); ++i) EXPECT_FLOAT_EQ(b2.value[i], b.value[i]);
}

TEST(SerializeTest, BadMagicThrows) {
  std::stringstream ss("garbage data here");
  Param p;
  p.value = Tensor({1});
  EXPECT_THROW(load_params(ss, {&p}), std::runtime_error);
}

TEST(SerializeTest, ShapeMismatchThrows) {
  util::Rng rng(3);
  Param a;
  a.value = Tensor::randn({2, 2}, rng);
  std::stringstream ss;
  save_params(ss, {&a});
  Param wrong;
  wrong.value = Tensor({3, 3});
  EXPECT_THROW(load_params(ss, {&wrong}), std::runtime_error);
}

TEST(SerializeTest, CountMismatchThrows) {
  Param a;
  a.value = Tensor({1});
  std::stringstream ss;
  save_params(ss, {&a});
  Param b, c;
  b.value = Tensor({1});
  c.value = Tensor({1});
  EXPECT_THROW(load_params(ss, {&b, &c}), std::runtime_error);
}

TEST(SerializeTest, TruncatedDataThrows) {
  util::Rng rng(4);
  const Tensor t = Tensor::randn({8, 8}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_tensor(truncated), std::runtime_error);
}

TEST(SerializeTest, RandomizedTensorRoundTrips) {
  // Property check: any tensor of any rank survives write/read bit-for-bit.
  util::Rng rng(0xBEEF);
  for (int trial = 0; trial < 200; ++trial) {
    const int rank = rng.uniform_int(1, 4);
    std::vector<int> shape;
    for (int d = 0; d < rank; ++d) shape.push_back(rng.uniform_int(1, 6));
    const Tensor t = Tensor::randn(shape, rng);
    std::stringstream ss;
    write_tensor(ss, t);
    const Tensor back = read_tensor(ss);
    ASSERT_TRUE(back.same_shape(t)) << "trial " << trial;
    for (std::size_t i = 0; i < t.numel(); ++i) {
      ASSERT_EQ(back[i], t[i]) << "trial " << trial << " element " << i;
    }
  }
}

TEST(SerializeTest, RandomizedParamSetRoundTrips) {
  // Random models: 1..8 params of random matrix/vector shapes, saved and
  // loaded into a same-shaped skeleton.
  util::Rng rng(0xF00D);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = rng.uniform_int(1, 8);
    std::vector<Param> source(static_cast<std::size_t>(n));
    std::vector<Param> target(static_cast<std::size_t>(n));
    std::vector<Param*> src_ptrs, dst_ptrs;
    for (int i = 0; i < n; ++i) {
      std::vector<int> shape{rng.uniform_int(1, 10)};
      if (rng.bernoulli(0.5)) shape.push_back(rng.uniform_int(1, 10));
      source[static_cast<std::size_t>(i)].value = Tensor::randn(shape, rng);
      target[static_cast<std::size_t>(i)].value = Tensor(shape);
      src_ptrs.push_back(&source[static_cast<std::size_t>(i)]);
      dst_ptrs.push_back(&target[static_cast<std::size_t>(i)]);
    }
    std::stringstream ss;
    save_params(ss, src_ptrs);
    load_params(ss, dst_ptrs);
    for (int i = 0; i < n; ++i) {
      const Tensor& a = source[static_cast<std::size_t>(i)].value;
      const Tensor& b = target[static_cast<std::size_t>(i)].value;
      ASSERT_TRUE(b.same_shape(a)) << "trial " << trial << " param " << i;
      for (std::size_t j = 0; j < a.numel(); ++j) {
        ASSERT_EQ(b[j], a[j]) << "trial " << trial << " param " << i;
      }
    }
  }
}

TEST(SerializeTest, FileHelpers) {
  util::Rng rng(5);
  Param p;
  p.value = Tensor::randn({6}, rng);
  const std::string path = ::testing::TempDir() + "/cp_params_test.bin";
  save_params_file(path, {&p});
  Param q;
  q.value = Tensor({6});
  ASSERT_TRUE(load_params_file(path, {&q}));
  for (std::size_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(q.value[i], p.value[i]);
  EXPECT_FALSE(load_params_file(path + ".does-not-exist", {&q}));
}

}  // namespace
}  // namespace cp::nn
