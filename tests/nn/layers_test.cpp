#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

namespace cp::nn {
namespace {

/// Finite-difference check: compare analytic parameter/input gradients of a
/// scalar loss against central differences.
void check_gradients(Layer& layer, const Tensor& input, float tol = 2e-2f) {
  // Scalar loss = sum of squares of outputs (grad = 2 * out).
  auto loss_of = [&](const Tensor& x) {
    const Tensor y = layer.forward(x);
    double s = 0;
    for (std::size_t i = 0; i < y.numel(); ++i) s += static_cast<double>(y[i]) * y[i];
    return s;
  };

  for (Param* p : layer.params()) p->grad.fill(0.0f);
  const Tensor out = layer.forward(input);
  Tensor gout = out;
  for (std::size_t i = 0; i < gout.numel(); ++i) gout[i] = 2.0f * out[i];
  const Tensor gin = layer.backward(gout);

  const float eps = 1e-3f;
  // Input gradient.
  Tensor x = input;
  for (std::size_t i = 0; i < std::min<std::size_t>(x.numel(), 8); ++i) {
    const float saved = x[i];
    x[i] = saved + eps;
    const double up = loss_of(x);
    x[i] = saved - eps;
    const double down = loss_of(x);
    x[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(gin[i], numeric, tol * (1.0 + std::fabs(numeric))) << "input grad " << i;
  }
  // Parameter gradients (restore forward cache with the original input).
  for (Param* p : layer.params()) {
    for (std::size_t i = 0; i < std::min<std::size_t>(p->value.numel(), 8); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const double up = loss_of(input);
      p->value[i] = saved - eps;
      const double down = loss_of(input);
      p->value[i] = saved;
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], numeric, tol * (1.0 + std::fabs(numeric))) << "param grad " << i;
    }
  }
}

TEST(LayersTest, LinearGradientsMatchFiniteDifferences) {
  util::Rng rng(1);
  Linear layer(5, 3, rng);
  const Tensor x = Tensor::randn({2, 5}, rng);
  check_gradients(layer, x);
}

TEST(LayersTest, ReLUGradients) {
  util::Rng rng(2);
  ReLU layer;
  Tensor x = Tensor::randn({2, 6}, rng);
  // Keep inputs away from the kink.
  for (std::size_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.3f;
  }
  check_gradients(layer, x);
}

TEST(LayersTest, SiLUGradients) {
  util::Rng rng(3);
  SiLU layer;
  check_gradients(layer, Tensor::randn({2, 6}, rng));
}

TEST(LayersTest, SigmoidGradients) {
  util::Rng rng(4);
  Sigmoid layer;
  check_gradients(layer, Tensor::randn({2, 6}, rng));
}

TEST(LayersTest, Conv2dGradients) {
  util::Rng rng(5);
  Conv2d layer(2, 3, 3, rng);
  check_gradients(layer, Tensor::randn({1, 2, 4, 4}, rng), 5e-2f);
}

TEST(LayersTest, Conv2dPreservesSpatialDims) {
  util::Rng rng(6);
  Conv2d layer(1, 4, 5, rng);
  const Tensor y = layer.forward(Tensor::randn({2, 1, 7, 9}, rng));
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 4);
  EXPECT_EQ(y.dim(2), 7);
  EXPECT_EQ(y.dim(3), 9);
}

TEST(LayersTest, Conv2dEvenKernelThrows) {
  util::Rng rng(6);
  EXPECT_THROW(Conv2d(1, 1, 4, rng), std::invalid_argument);
}

TEST(LayersTest, SequentialComposesAndBackprops) {
  util::Rng rng(7);
  Sequential net;
  net.add(std::make_unique<Linear>(4, 8, rng));
  net.add(std::make_unique<SiLU>());
  net.add(std::make_unique<Linear>(8, 1, rng));
  EXPECT_EQ(net.size(), 3u);
  EXPECT_EQ(net.params().size(), 4u);

  const Tensor x = Tensor::randn({3, 4}, rng);
  const Tensor y = net.forward(x);
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_EQ(y.dim(1), 1);

  net.zero_grad();
  Tensor g({3, 1}, 1.0f);
  const Tensor gin = net.backward(g);
  EXPECT_EQ(gin.dim(1), 4);
  // Some gradient must have accumulated.
  double total = 0;
  for (Param* p : net.params()) {
    for (std::size_t i = 0; i < p->grad.numel(); ++i) total += std::fabs(p->grad[i]);
  }
  EXPECT_GT(total, 0.0);
}

TEST(LayersTest, BceWithLogitsMatchesManual) {
  Tensor logits({1, 2});
  logits[0] = 0.0f;
  logits[1] = 2.0f;
  Tensor targets({1, 2});
  targets[0] = 1.0f;
  targets[1] = 0.0f;
  Tensor grad;
  const float loss = bce_with_logits(logits, targets, grad);
  const double expected =
      0.5 * (-std::log(0.5) + -std::log(1.0 - 1.0 / (1.0 + std::exp(-2.0))));
  EXPECT_NEAR(loss, expected, 1e-5);
  // grad = (sigmoid(x) - t) / n
  EXPECT_NEAR(grad[0], (0.5 - 1.0) / 2.0, 1e-5);
  EXPECT_NEAR(grad[1], (1.0 / (1.0 + std::exp(-2.0))) / 2.0, 1e-5);
}

TEST(LayersTest, BceIsStableForExtremeLogits) {
  Tensor logits({1, 2});
  logits[0] = 100.0f;
  logits[1] = -100.0f;
  Tensor targets({1, 2});
  targets[0] = 1.0f;
  targets[1] = 0.0f;
  Tensor grad;
  const float loss = bce_with_logits(logits, targets, grad);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-5);
}

TEST(LayersTest, MseLoss) {
  Tensor pred({1, 2});
  pred[0] = 1.0f;
  pred[1] = 3.0f;
  Tensor target({1, 2});
  target[0] = 0.0f;
  target[1] = 3.0f;
  Tensor grad;
  EXPECT_NEAR(mse_loss(pred, target, grad), 0.5, 1e-6);
  EXPECT_NEAR(grad[0], 1.0, 1e-6);
  EXPECT_NEAR(grad[1], 0.0, 1e-6);
}

}  // namespace
}  // namespace cp::nn
