// Concurrent stress test for the observability registry: many writer
// threads hammering counters, histograms and nested spans while a reader
// thread repeatedly snapshots and the enabled flag is toggled. Built as its
// own binary so the ThreadSanitizer configuration can target it:
//   cmake -B build-tsan -DCHATPATTERN_TSAN=ON
//   ctest -R 'thread_pool|batch|obs_stress'

#include "obs/registry.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cp::obs {
namespace {

TEST(ObsStressTest, ConcurrentWritersAndSnapshots) {
  constexpr int kWriters = 8;
  constexpr long long kIters = 2000;

  Registry r;
  r.set_enabled(true);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    long long snapshots = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const Snapshot snap = r.snapshot();
      // Monotonicity under concurrent writers: whatever the interleaving,
      // a counter can only have grown since the previous flush.
      const auto it = snap.counters.find("stress/items");
      if (it != snap.counters.end()) EXPECT_GE(it->second, 0);
      ++snapshots;
    }
    EXPECT_GT(snapshots, 0);
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&r, w] {
      for (long long i = 0; i < kIters; ++i) {
        const Span outer = trace_scope("stress", &r);
        r.add("stress/items");
        r.add("stress/weighted", (w + i) % 3);
        r.observe("stress/value", static_cast<double>(i % 17));
        { const Span inner = trace_scope("inner", &r); }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const Snapshot snap = r.snapshot();
  EXPECT_EQ(snap.counters.at("stress/items"), kWriters * kIters);
  EXPECT_EQ(snap.histograms.at("stress/value").count, kWriters * kIters);
  if (kCompiledIn) {
    EXPECT_EQ(snap.spans.at("stress").count, kWriters * kIters);
    EXPECT_EQ(snap.spans.at("stress/inner").count, kWriters * kIters);
  }
}

TEST(ObsStressTest, EnableToggleRacesAreBenign) {
  constexpr int kWriters = 4;
  constexpr long long kIters = 2000;

  Registry r;
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    bool on = false;
    while (!stop.load(std::memory_order_relaxed)) {
      on = !on;
      r.set_enabled(on);
    }
    r.set_enabled(true);
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&r] {
      for (long long i = 0; i < kIters; ++i) {
        const Span span = trace_scope("toggle", &r);
        r.add("toggle/items");
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  toggler.join();

  // Every recorded increment survives; the exact count depends on the
  // toggle interleaving but must be bounded by the attempt count.
  const Snapshot snap = r.snapshot();
  const auto it = snap.counters.find("toggle/items");
  const long long total = it == snap.counters.end() ? 0 : it->second;
  EXPECT_GE(total, 0);
  EXPECT_LE(total, kWriters * kIters);
}

}  // namespace
}  // namespace cp::obs
