// Unit tests for the observability substrate: counters/gauges/histograms,
// nested span trees, thread-merge determinism and the run-manifest JSON
// round-trip. The concurrent stress suite lives in obs_stress_test.cpp so
// the TSAN build can target it (ctest -R 'thread_pool|batch|obs_stress').

#include "obs/manifest.h"
#include "obs/registry.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace cp::obs {
namespace {

TEST(RegistryTest, CountersAndGauges) {
  Registry r;
  r.set_enabled(true);
  r.add("items");
  r.add("items", 4);
  r.add("other", 2);
  r.set_gauge("loss", 0.5);
  r.set_gauge("loss", 0.25);  // last write wins

  const Snapshot snap = r.snapshot();
  EXPECT_EQ(snap.counters.at("items"), 5);
  EXPECT_EQ(snap.counters.at("other"), 2);
  EXPECT_DOUBLE_EQ(snap.gauges.at("loss"), 0.25);
}

TEST(RegistryTest, DisabledRecordsNothing) {
  Registry r;  // disabled by default
  r.add("items");
  r.set_gauge("g", 1.0);
  r.observe("h", 2.0);
  r.record_span("s", 0.1);
  { const Span span = trace_scope("s", &r); }

  const Snapshot snap = r.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.spans.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(RegistryTest, ResetClearsDataButKeepsEnabled) {
  Registry r;
  r.set_enabled(true);
  r.add("items");
  r.reset();
  EXPECT_TRUE(r.enabled());
  EXPECT_TRUE(r.snapshot().counters.empty());
  r.add("items", 3);
  EXPECT_EQ(r.snapshot().counters.at("items"), 3);
}

TEST(RegistryTest, HistogramStatsAndBuckets) {
  EXPECT_EQ(ValueStat::bucket_for(0.0), 0);
  EXPECT_EQ(ValueStat::bucket_for(1.0), 0);
  EXPECT_EQ(ValueStat::bucket_for(1.5), 1);
  EXPECT_EQ(ValueStat::bucket_for(2.0), 1);
  EXPECT_EQ(ValueStat::bucket_for(3.0), 2);
  EXPECT_EQ(ValueStat::bucket_for(1e30), ValueStat::kBuckets - 1);

  Registry r;
  r.set_enabled(true);
  r.observe("v", 1.0);
  r.observe("v", 3.0);
  r.observe("v", 8.0);
  const Snapshot snap = r.snapshot();
  const ValueStat& stat = snap.histograms.at("v");
  EXPECT_EQ(stat.count, 3);
  EXPECT_DOUBLE_EQ(stat.sum, 12.0);
  EXPECT_DOUBLE_EQ(stat.min, 1.0);
  EXPECT_DOUBLE_EQ(stat.max, 8.0);
  EXPECT_EQ(stat.buckets[0], 1);  // 1.0
  EXPECT_EQ(stat.buckets[2], 1);  // 3.0 <= 4
  EXPECT_EQ(stat.buckets[3], 1);  // 8.0 <= 8
}

TEST(SpanTest, NestedSpansRecordHierarchicalPaths) {
  if (!kCompiledIn) GTEST_SKIP() << "instrumentation compiled out";
  Registry r;
  r.set_enabled(true);
  {
    const Span outer = trace_scope("outer", &r);
    { const Span inner = trace_scope("inner", &r); }
    { const Span inner = trace_scope("inner", &r); }
  }
  { const Span outer = trace_scope("outer", &r); }

  const Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.spans.size(), 2u);
  EXPECT_EQ(snap.spans.at("outer").count, 2);
  EXPECT_EQ(snap.spans.at("outer/inner").count, 2);
  EXPECT_GE(snap.spans.at("outer").min_s, 0.0);
  // The parent's total covers its children's.
  EXPECT_GE(snap.spans.at("outer").total_s, snap.spans.at("outer/inner").total_s);
}

TEST(SpanTest, InactiveSpanDoesNotPerturbTheThreadPath) {
  if (!kCompiledIn) GTEST_SKIP() << "instrumentation compiled out";
  Registry enabled;
  enabled.set_enabled(true);
  Registry disabled;
  {
    const Span outer = trace_scope("outer", &enabled);
    const Span skip = trace_scope("skip", &disabled);  // inert
    const Span inner = trace_scope("inner", &enabled);
  }
  const Snapshot snap = enabled.snapshot();
  EXPECT_EQ(snap.spans.count("outer/inner"), 1u);
  EXPECT_EQ(snap.spans.count("outer/skip/inner"), 0u);
}

TEST(SpanTest, SpanTreeJsonNestsByPath) {
  if (!kCompiledIn) GTEST_SKIP() << "instrumentation compiled out";
  Registry r;
  r.set_enabled(true);
  {
    const Span a = trace_scope("a", &r);
    { const Span b = trace_scope("b", &r); }
  }
  const util::Json json = r.snapshot().to_json();
  const util::Json& tree = json.at("span_tree");
  ASSERT_TRUE(tree.contains("a"));
  EXPECT_EQ(tree.at("a").at("count").as_int(), 1);
  ASSERT_TRUE(tree.at("a").contains("children"));
  EXPECT_EQ(tree.at("a").at("children").at("b").at("count").as_int(), 1);
  // Flat view carries the same data under the joined path.
  EXPECT_EQ(json.at("spans").at("a/b").at("count").as_int(), 1);
}

TEST(RegistryTest, GlobalFreeFunctionsRecordWhenEnabled) {
  if (!kCompiledIn) GTEST_SKIP() << "instrumentation compiled out";
  Registry& g = Registry::global();
  g.reset();
  g.set_enabled(true);
  count("free/items", 2);
  gauge("free/gauge", 7.0);
  observe("free/hist", 3.0);
  { const Span span = trace_scope("free/span"); }
  const Snapshot snap = g.snapshot();
  g.set_enabled(false);
  g.reset();
  EXPECT_EQ(snap.counters.at("free/items"), 2);
  EXPECT_DOUBLE_EQ(snap.gauges.at("free/gauge"), 7.0);
  EXPECT_EQ(snap.histograms.at("free/hist").count, 1);
  EXPECT_EQ(snap.spans.at("free/span").count, 1);
}

// The merge is commutative and associative, so the merged totals must be
// identical for every thread count — the same invariant the generation
// stack guarantees for its outputs.
TEST(RegistryTest, ThreadMergeIsDeterministicAcrossThreadCounts) {
  constexpr long long kItems = 200;
  Snapshot reference;
  for (const int threads : {1, 2, 4}) {
    Registry r;
    r.set_enabled(true);
    util::ThreadPool pool(threads);
    pool.parallel_for(kItems, [&](long long i) {
      r.add("items");
      r.add("weighted", i % 5);
      r.observe("value", static_cast<double>(i % 9));
      r.record_span("work", 0.001);
    });
    const Snapshot snap = r.snapshot();
    EXPECT_EQ(snap.counters.at("items"), kItems);
    if (threads == 1) {
      reference = snap;
      continue;
    }
    EXPECT_EQ(snap.counters, reference.counters);
    EXPECT_EQ(snap.spans.at("work").count, reference.spans.at("work").count);
    EXPECT_EQ(snap.histograms.at("value").count, reference.histograms.at("value").count);
    EXPECT_DOUBLE_EQ(snap.histograms.at("value").sum, reference.histograms.at("value").sum);
    EXPECT_EQ(snap.histograms.at("value").buckets, reference.histograms.at("value").buckets);
  }
}

TEST(ManifestTest, JsonRoundTripThroughFile) {
  Registry r;
  r.set_enabled(true);
  r.add("manifest/items", 3);
  r.set_gauge("manifest/loss", 0.125);

  RunManifest m;
  m.tool = "obs_test";
  m.args = {"--samples", "3"};
  m.config["seed"] = 7LL;
  m.metrics["legality_pct"] = 98.5;

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cp_obs_test" / "nested";
  std::filesystem::remove_all(dir.parent_path());
  const std::filesystem::path path = dir / "run_manifest.json";
  std::string error;
  ASSERT_TRUE(m.write(path.string(), r, &error)) << error;

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const util::Json parsed = util::Json::parse(buffer.str());

  EXPECT_EQ(parsed.at("schema_version").as_int(), 1);
  EXPECT_EQ(parsed.at("tool").as_string(), "obs_test");
  EXPECT_EQ(parsed.at("args").as_array().size(), 2u);
  EXPECT_EQ(parsed.at("config").at("seed").as_int(), 7);
  EXPECT_DOUBLE_EQ(parsed.at("metrics").at("legality_pct").as_number(), 98.5);
  EXPECT_EQ(parsed.at("environment").at("obs_compiled_in").as_bool(), kCompiledIn);
  const util::Json& counters = parsed.at("observability").at("counters");
  EXPECT_EQ(counters.at("manifest/items").as_int(), 3);
  EXPECT_DOUBLE_EQ(parsed.at("observability").at("gauges").at("manifest/loss").as_number(),
                   0.125);
  std::filesystem::remove_all(dir.parent_path());
}

TEST(ManifestTest, WriteReportsUnwritablePath) {
  RunManifest m;
  m.tool = "obs_test";
  std::string error;
  // A path whose parent is a *file* cannot be created.
  const std::filesystem::path file =
      std::filesystem::temp_directory_path() / "cp_obs_test_blocker";
  std::ofstream(file) << "x";
  EXPECT_FALSE(m.write((file / "sub" / "m.json").string(), Registry::global(), &error));
  EXPECT_FALSE(error.empty());
  std::filesystem::remove(file);
}

}  // namespace
}  // namespace cp::obs
