// Parity of the word-parallel diffusion/DRC kernels against the retained
// scalar reference implementations (diffusion/reference.h). The packed
// kernels must be bit-identical AND consume the identical RNG stream — the
// goldens and the cross-thread determinism contract both depend on it.

#include <gtest/gtest.h>

#include <vector>

#include "diffusion/reference.h"
#include "diffusion/tabular_denoiser.h"
#include "diffusion/trainer.h"
#include "diffusion/transition.h"
#include "drc/checker.h"
#include "squish/reference.h"
#include "util/rng.h"

namespace cp::diffusion {
namespace {

struct Shape {
  int rows;
  int cols;
};
constexpr Shape kShapes[] = {{1, 1}, {5, 5}, {9, 9},  {3, 63},  {7, 64},
                             {2, 65}, {16, 70}, {12, 129}, {32, 32}};

squish::Topology random_topology(util::Rng& rng, int rows, int cols, double density) {
  squish::Topology t(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) t.set(r, c, rng.bernoulli(density));
  }
  return t;
}

TEST(PackedParityTest, ForwardNoiseMatchesReferenceAndRngStream) {
  const NoiseSchedule schedule{ScheduleConfig{}};
  util::Rng shape_rng(201);
  for (const Shape& s : kShapes) {
    const squish::Topology x0 = random_topology(shape_rng, s.rows, s.cols, 0.5);
    const squish::ByteTopology bx0(x0);
    for (int k : {1, 10, schedule.steps()}) {
      util::Rng ra(777 + static_cast<std::uint64_t>(k));
      util::Rng rb(777 + static_cast<std::uint64_t>(k));
      const squish::Topology packed = forward_noise(x0, schedule, k, ra);
      const squish::ByteTopology byte = reference_forward_noise(bx0, schedule, k, rb);
      EXPECT_EQ(packed, byte.packed()) << s.rows << "x" << s.cols << " k=" << k;
      // Identical stream consumption: the generators must be in the same
      // state afterwards (one bernoulli per cell, row-major).
      for (int probe = 0; probe < 8; ++probe) {
        ASSERT_EQ(ra.next_u64(), rb.next_u64()) << "RNG stream diverged at k=" << k;
      }
    }
  }
}

TEST(PackedParityTest, NeighborhoodIndicesMatchReference) {
  util::Rng rng(202);
  for (const Shape& s : kShapes) {
    const squish::Topology t = random_topology(rng, s.rows, s.cols, 0.4);
    const squish::ByteTopology b(t);
    std::vector<int> idx(static_cast<std::size_t>(s.cols));
    for (int r = 0; r < s.rows; ++r) {
      TabularDenoiser::neighborhood_indices_row(t, r, idx.data());
      for (int c = 0; c < s.cols; ++c) {
        ASSERT_EQ(idx[static_cast<std::size_t>(c)], reference_neighborhood_index(b, r, c))
            << s.rows << "x" << s.cols << " cell (" << r << "," << c << ")";
      }
    }
  }
}

TEST(PackedParityTest, TabularPackedGatherToggleIsBitIdentical) {
  // A fitted denoiser must predict identically with the packed plane gather
  // on and off — the toggle exists purely for before/after benching.
  const NoiseSchedule schedule{ScheduleConfig{}};
  util::Rng rng(203);
  std::vector<std::vector<squish::Topology>> data(1);
  for (int i = 0; i < 3; ++i) data[0].push_back(random_topology(rng, 24, 24, 0.45));
  TabularConfig tc;
  tc.conditions = 1;
  TabularDenoiser packed_d = fit_tabular(schedule, tc, data, 99);
  TabularDenoiser scalar_d = packed_d;
  packed_d.set_packed_gather(true);
  scalar_d.set_packed_gather(false);
  const squish::Topology xk = random_topology(rng, 24, 24, 0.5);
  ProbGrid pa, pb;
  for (int k : {1, 20, schedule.steps()}) {
    packed_d.predict_x0(xk, k, 0, pa);
    scalar_d.predict_x0(xk, k, 0, pb);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      ASSERT_EQ(pa[i], pb[i]) << "k=" << k << " cell " << i;
    }
  }
}

TEST(PackedParityTest, DrcRunScansMatchReference) {
  util::Rng rng(204);
  for (const Shape& s : kShapes) {
    const squish::Topology t = random_topology(rng, s.rows, s.cols, 0.5);
    const squish::ByteTopology b(t);
    for (std::uint8_t value : {0, 1}) {
      for (int r = 0; r < s.rows; ++r) {
        EXPECT_EQ(drc::row_runs(t, r, value), reference_row_runs(b, r, value))
            << s.rows << "x" << s.cols << " row " << r << " value " << int(value);
      }
      // Column runs via the packed transpose agree with the per-column walk.
      const squish::Topology tt = t.transposed();
      const squish::ByteTopology btt(tt);
      for (int c = 0; c < s.cols; ++c) {
        EXPECT_EQ(drc::col_runs(t, c, value), reference_row_runs(btt, c, value))
            << s.rows << "x" << s.cols << " col " << c << " value " << int(value);
      }
    }
  }
}

// Degenerate and extreme noise levels: all-zero and all-one grids survive the
// word-parallel path with the tail invariant intact (popcount sane).
TEST(PackedParityTest, ExtremeGridsKeepTailInvariant) {
  const NoiseSchedule schedule{ScheduleConfig{}};
  for (int cols : {1, 63, 64, 65}) {
    const squish::Topology zeros(4, cols);
    squish::Topology ones(4, cols);
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < cols; ++c) ones.set(r, c, 1);
    }
    EXPECT_EQ(zeros.popcount(), 0u);
    EXPECT_EQ(ones.popcount(), static_cast<std::size_t>(4) * cols);
    util::Rng ra(31), rb(31);
    const squish::Topology nz = forward_noise(zeros, schedule, schedule.steps(), ra);
    const squish::ByteTopology bz =
        reference_forward_noise(squish::ByteTopology(zeros), schedule, schedule.steps(), rb);
    EXPECT_EQ(nz, bz.packed()) << "cols " << cols;
    EXPECT_LE(nz.popcount(), static_cast<std::size_t>(4) * cols);
  }
}

}  // namespace
}  // namespace cp::diffusion
