// Statistical-equivalence harness for few-step sampling: the fast modes
// must match the full 1000-step chain on the paper's summary metrics, not
// just run faster. For a fixed seed set we draw N topologies with the full
// chain and with each fast kind at a 50-visited-step budget (K/20), then
// compare mean density, mean scan-line complexity (c_x + c_y) and library
// diversity (Definition 2). Deltas must stay inside the documented
// thresholds below; a failure prints the whole per-metric table so the
// drift is readable without rerunning.
//
// Threshold provenance: the tabular-denoiser fixture reproduces stripe data
// with density 0.5 and complexity ~8-16 per axis; across seeds the
// full-chain run itself moves ~half of each threshold, so the bounds are
// roughly 2x the sampler's own seed-to-seed noise — tight enough to catch a
// broken schedule (e.g. skipping all low-noise steps doubles complexity),
// loose enough to pass on healthy jitter.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "diffusion/sampler.h"
#include "diffusion/tabular_denoiser.h"
#include "diffusion/timestep_schedule.h"
#include "metrics/metrics.h"

namespace cp::diffusion {
namespace {

constexpr int kPatterns = 6;        // library size per mode
constexpr int kFastSteps = 50;      // K/20 visited-step budget
constexpr double kDensityTol = 0.12;
constexpr double kComplexityTol = 10.0;  // mean (c_x + c_y), grid is 32x32
constexpr double kDiversityTol = 1.6;    // nats, libraries of kPatterns

squish::Topology stripes(int n, int period) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

struct LibraryStats {
  double density = 0.0;     // mean fill fraction
  double complexity = 0.0;  // mean c_x + c_y
  double diversity = 0.0;   // entropy of the (c_x, c_y) histogram
};

class FastQualityTest : public ::testing::Test {
 protected:
  FastQualityTest() : schedule_(ScheduleConfig{}), denoiser_(make_denoiser()) {}

  TabularDenoiser make_denoiser() {
    TabularConfig cfg;
    cfg.conditions = 1;
    cfg.draws_per_bucket = 3;
    TabularDenoiser d(schedule_, cfg);
    util::Rng rng(1);
    std::vector<squish::Topology> data;
    for (int p = 2; p <= 4; ++p) data.push_back(stripes(32, p));
    d.fit(data, 0, rng);
    return d;
  }

  std::vector<squish::Topology> draw_library(const DiffusionSampler& sampler,
                                             ScheduleKind kind, int steps) const {
    SampleConfig cfg;
    cfg.rows = 32;
    cfg.cols = 32;
    cfg.sample_steps = steps;
    cfg.schedule_kind = kind;
    cfg.polish_rounds = 1;
    std::vector<squish::Topology> lib;
    for (int i = 0; i < kPatterns; ++i) {
      util::Rng rng(100 + static_cast<std::uint64_t>(i));  // fixed seed set
      lib.push_back(sampler.sample(cfg, rng));
    }
    return lib;
  }

  static LibraryStats stats_of(const std::vector<squish::Topology>& lib) {
    LibraryStats s;
    for (const auto& t : lib) {
      const auto [cx, cy] = t.complexity();
      s.density += t.density();
      s.complexity += cx + cy;
    }
    s.density /= lib.size();
    s.complexity /= lib.size();
    s.diversity = metrics::diversity(lib);
    return s;
  }

  NoiseSchedule schedule_;
  TabularDenoiser denoiser_;
};

TEST_F(FastQualityTest, FewStepModesMatchFullChainStatistics) {
  DiffusionSampler sampler(schedule_, denoiser_);

  // Register a searched schedule so kSearched exercises its real path, not
  // the noise-uniform fallback. Small search config: the greedy loop with a
  // tabular denoiser is fast but not free.
  std::vector<std::vector<squish::Topology>> held_out(1);
  for (int p = 2; p <= 4; ++p) held_out[0].push_back(stripes(32, p));
  SearchConfig scfg;
  scfg.budget = kFastSteps;
  scfg.candidate_pool = 96;
  scfg.max_per_class = 2;
  scfg.probes = 1;
  sampler.set_searched_timesteps(
      search_timesteps(schedule_, denoiser_, held_out, scfg).timesteps);

  const LibraryStats full =
      stats_of(draw_library(sampler, ScheduleKind::kNoiseUniform, /*steps=*/0));

  struct Mode {
    ScheduleKind kind;
    LibraryStats stats;
  };
  std::vector<Mode> modes;
  for (ScheduleKind kind : {ScheduleKind::kNoiseUniform, ScheduleKind::kUniformStride,
                            ScheduleKind::kQuadratic, ScheduleKind::kSearched}) {
    modes.push_back({kind, stats_of(draw_library(sampler, kind, kFastSteps))});
  }

  // Render the whole comparison table once; every assertion carries it so a
  // single failing metric still shows the full picture.
  std::ostringstream table;
  table << "\n  mode                 density  complexity  diversity\n";
  auto row = [&table](const std::string& name, const LibraryStats& s) {
    table << "  " << name << std::string(name.size() < 20 ? 20 - name.size() : 1, ' ')
          << s.density << "  " << s.complexity << "  " << s.diversity << "\n";
  };
  row("full-chain", full);
  for (const Mode& m : modes) row(std::string("fast-") + to_string(m.kind), m.stats);

  for (const Mode& m : modes) {
    const std::string name = to_string(m.kind);
    EXPECT_LE(std::abs(m.stats.density - full.density), kDensityTol)
        << name << " density drifted" << table.str();
    EXPECT_LE(std::abs(m.stats.complexity - full.complexity), kComplexityTol)
        << name << " complexity drifted" << table.str();
    EXPECT_LE(std::abs(m.stats.diversity - full.diversity), kDiversityTol)
        << name << " diversity drifted" << table.str();
    // The fast library must not collapse: all-empty or all-full grids would
    // pass a pure delta check if the full chain also broke, so pin absolute
    // sanity too.
    EXPECT_GT(m.stats.density, 0.2) << name << table.str();
    EXPECT_LT(m.stats.density, 0.8) << name << table.str();
  }
}

TEST_F(FastQualityTest, FewStepVisitsAtMostBudgetPlusTail) {
  // The quality above is bought with <= kFastSteps + 2 denoiser levels per
  // sample (vs 1000): pin the visited-step count the bench's speedup claim
  // rests on.
  const DiffusionSampler sampler(schedule_, denoiser_);
  for (ScheduleKind kind : {ScheduleKind::kNoiseUniform, ScheduleKind::kUniformStride,
                            ScheduleKind::kQuadratic}) {
    const auto steps = sampler.make_timesteps(kFastSteps, kind);
    EXPECT_LE(steps.size(), static_cast<std::size_t>(kFastSteps) + 2) << to_string(kind);
    EXPECT_GE(steps.size(), static_cast<std::size_t>(kFastSteps) / 2) << to_string(kind);
  }
}

}  // namespace
}  // namespace cp::diffusion
