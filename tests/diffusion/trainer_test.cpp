#include "diffusion/trainer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cp::diffusion {
namespace {

squish::Topology stripes(int n, int period) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

std::vector<std::vector<squish::Topology>> stripe_classes() {
  std::vector<std::vector<squish::Topology>> per_class(2);
  for (int p = 2; p <= 4; ++p) {
    per_class[0].push_back(stripes(24, p));
    per_class[1].push_back(stripes(24, p).transposed());
  }
  return per_class;
}

TEST(TrainerTest, MlpTrainingReducesLoss) {
  const NoiseSchedule schedule{ScheduleConfig{}};
  util::Rng rng(1);
  MlpDenoiser model(schedule, MlpConfig{2, 24, 2}, rng);
  const auto data = stripe_classes();

  const double before = evaluate_hybrid_loss(model, schedule, data, 1e-3f, 2, 99);
  TrainConfig cfg;
  cfg.iterations = 400;
  cfg.batch_pixels = 128;
  cfg.lr = 3e-3f;
  cfg.seed = 5;
  const TrainStats stats = train_mlp(model, data, cfg);
  const double after = evaluate_hybrid_loss(model, schedule, data, 1e-3f, 2, 99);
  EXPECT_LT(after, before) << "training must reduce the hybrid loss";
  EXPECT_TRUE(std::isfinite(stats.final_loss));
}

TEST(TrainerTest, TrainedMlpBeatsUniformControl) {
  const NoiseSchedule schedule{ScheduleConfig{}};
  util::Rng rng(2);
  MlpDenoiser model(schedule, MlpConfig{2, 24, 2}, rng);
  const auto data = stripe_classes();
  TrainConfig cfg;
  cfg.iterations = 800;
  cfg.batch_pixels = 128;
  cfg.lr = 3e-3f;
  cfg.seed = 3;
  train_mlp(model, data, cfg);

  const UniformDenoiser control({0.5f, 0.5f});
  const double model_loss = evaluate_hybrid_loss(model, schedule, data, 1e-3f, 2, 7);
  const double control_loss = evaluate_hybrid_loss(control, schedule, data, 1e-3f, 2, 7);
  EXPECT_LT(model_loss, control_loss);
}

TEST(TrainerTest, FitTabularBeatsUniformControl) {
  const NoiseSchedule schedule{ScheduleConfig{}};
  TabularConfig cfg;
  cfg.conditions = 2;
  cfg.draws_per_bucket = 3;
  const auto data = stripe_classes();
  const TabularDenoiser model = fit_tabular(schedule, cfg, data, 11);
  const UniformDenoiser control({0.5f, 0.5f});
  EXPECT_LT(evaluate_hybrid_loss(model, schedule, data, 1e-3f, 2, 7),
            evaluate_hybrid_loss(control, schedule, data, 1e-3f, 2, 7));
}

TEST(TrainerTest, EmptyDataThrows) {
  const NoiseSchedule schedule{ScheduleConfig{}};
  util::Rng rng(1);
  MlpDenoiser model(schedule, MlpConfig{1, 8, 1}, rng);
  TrainConfig cfg;
  EXPECT_THROW(train_mlp(model, {}, cfg), std::invalid_argument);
}

TEST(TrainerTest, TrainingIsDeterministicForSeed) {
  const NoiseSchedule schedule{ScheduleConfig{}};
  const auto data = stripe_classes();
  auto run = [&](std::uint64_t seed) {
    util::Rng rng(9);
    MlpDenoiser model(schedule, MlpConfig{2, 12, 1}, rng);
    TrainConfig cfg;
    cfg.iterations = 50;
    cfg.seed = seed;
    train_mlp(model, data, cfg);
    ProbGrid p0;
    model.predict_x0(stripes(24, 2), 10, 0, p0);
    return p0;
  };
  const ProbGrid a = run(7), b = run(7), c = run(8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) differs |= a[i] != c[i];
  EXPECT_TRUE(differs);
}

TEST(TrainerTest, TrainedWeightsInvariantToThreadCount) {
  // TrainConfig::threads changes who evaluates a pixel's loss, never which
  // pixels are drawn or in what order gradients are summed — weights must be
  // bit-identical for any thread count.
  const NoiseSchedule schedule{ScheduleConfig{}};
  const auto data = stripe_classes();
  auto run = [&](int threads) {
    util::Rng rng(9);
    MlpDenoiser model(schedule, MlpConfig{2, 12, 1}, rng);
    TrainConfig cfg;
    cfg.iterations = 50;
    cfg.seed = 7;
    cfg.threads = threads;
    train_mlp(model, data, cfg);
    ProbGrid p0;
    model.predict_x0(stripes(24, 2), 10, 0, p0);
    return p0;
  };
  const ProbGrid serial = run(1), pooled = run(4);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], pooled[i]) << "pixel " << i;
  }
}

TEST(TrainerTest, HybridLossInvariantToThreadCount) {
  const NoiseSchedule schedule{ScheduleConfig{}};
  const auto data = stripe_classes();
  // The tabular denoiser advertises thread-safe inference, so the parallel
  // evaluation path actually engages.
  TabularConfig tc;
  tc.conditions = 2;
  tc.draws_per_bucket = 3;
  const TabularDenoiser tabular = fit_tabular(schedule, tc, data, 21);
  ASSERT_TRUE(tabular.thread_safe_inference());
  const double serial = evaluate_hybrid_loss(tabular, schedule, data, 1e-3f, 2, 99, 1);
  const double pooled = evaluate_hybrid_loss(tabular, schedule, data, 1e-3f, 2, 99, 4);
  EXPECT_EQ(serial, pooled);
}

}  // namespace
}  // namespace cp::diffusion
