// Few-step (fast) sampling engine: analytic correctness of the composed
// skipped-step transitions and the stride-1 regression anchor.
//
// Two families of claims:
//   1. Algebra. The composed channel over a jump [j, k] equals the literal
//      2x2 matrix product of the per-step bit-flip channels, and the
//      skipped-step posterior equals exact marginalisation over any
//      intermediate visited step — i.e. striding is exact, not an
//      approximation (DiffPattern-Flex).
//   2. Anchor. The degenerate budget (count <= 0 or >= k_start) yields the
//      full chain {k_start, ..., 0} for EVERY ScheduleKind, so fast sampling
//      at stride 1 is bit-identical to the original sampler on both the
//      tabular and the MLP denoiser. This is what keeps every existing
//      golden valid.

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <vector>

#include "diffusion/mlp_denoiser.h"
#include "diffusion/sampler.h"
#include "diffusion/tabular_denoiser.h"
#include "diffusion/timestep_schedule.h"
#include "diffusion/transition.h"

namespace cp::diffusion {
namespace {

squish::Topology stripes(int n, int period) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

/// Row-major 2x2 stochastic matrix of the symmetric bit-flip channel.
using Channel = std::array<double, 4>;

Channel flip_channel(double f) { return {1.0 - f, f, f, 1.0 - f}; }

Channel matmul(const Channel& a, const Channel& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

// ---- the composed-channel algebra ---------------------------------------

/// The recurrence form of flip_between is only identifiable while the start
/// level is not yet fully mixed: at cumulative flip 0.5 the denominator
/// 1 - 2 bbar_j vanishes and the implementation returns 0.5 by convention
/// (harmless — the state there is uniform and independent of x_0 to float
/// precision). Exact-identity checks restrict themselves to
/// well-conditioned start levels, the convention is asserted past the
/// implementation's 1e-12 cutoff, and the ill-conditioned band in between
/// is skipped.
bool conditioned(const NoiseSchedule& s, int level) {
  return 1.0 - 2.0 * s.cumulative_flip(level) > 1e-6;
}

bool saturated(const NoiseSchedule& s, int level) {
  return 1.0 - 2.0 * s.cumulative_flip(level) <= 1e-12;
}

TEST(FastSamplerTest, ComposedChannelEqualsPerStepMatrixProduct) {
  // flip_between(j, k) must equal the off-diagonal of the literal product
  // Q_{j+1} Q_{j+2} ... Q_k of per-step transition matrices — every pair of
  // a small schedule, checked to float noise.
  const NoiseSchedule s{ScheduleConfig{13, 0.01, 0.5}};
  for (int j = 0; j <= s.steps(); ++j) {
    for (int k = j; k <= s.steps(); ++k) {
      Channel prod = flip_channel(0.0);
      for (int i = j + 1; i <= k; ++i) prod = matmul(prod, flip_channel(s.beta(i)));
      // The eigenvalue form is the same product, so it matches to rounding.
      EXPECT_NEAR(s.flip_between_product(j, k), prod[1], 1e-12)
          << "jump " << j << "->" << k;
      if (saturated(s, j)) {
        EXPECT_DOUBLE_EQ(s.flip_between(j, k), 0.5) << "saturation convention";
      } else if (conditioned(s, j)) {
        EXPECT_NEAR(s.flip_between(j, k), prod[1], 1e-9) << "jump " << j << "->" << k;
      }
      // The product stays a symmetric channel (rows sum to 1, off-diagonals
      // equal): the closed form exists because of this.
      EXPECT_NEAR(prod[1], prod[2], 1e-12);
      EXPECT_NEAR(prod[0] + prod[1], 1.0, 1e-12);
    }
  }
}

TEST(FastSamplerTest, FlipBetweenProductIdentityMatchesRecurrence) {
  // 1 - 2f = prod (1 - 2 beta_i): the eigenvalue form must agree with the
  // two-term recurrence across the paper's full 1000-step schedule wherever
  // the recurrence is identifiable; past mixing it returns 0.5 exactly.
  const NoiseSchedule s{ScheduleConfig{}};
  for (int j : {0, 1, 7, 100, 500, 998}) {
    for (int k : {1, 8, 101, 501, 999, 1000}) {
      if (j > k) continue;
      if (saturated(s, j)) {
        EXPECT_DOUBLE_EQ(s.flip_between(j, k), 0.5) << "jump " << j << "->" << k;
      } else if (conditioned(s, j)) {
        EXPECT_NEAR(s.flip_between(j, k), s.flip_between_product(j, k), 1e-9)
            << "jump " << j << "->" << k;
      }
    }
  }
}

TEST(FastSamplerTest, ComposeFlipSplitsAnyJump) {
  // Splitting a jump at any intermediate step and composing the halves must
  // reproduce the whole: f(j,k) = compose(f(j,m), f(m,k)). Kept to levels
  // where the recurrence is well-conditioned (see well_mixed).
  const NoiseSchedule s{ScheduleConfig{64, 0.02, 0.25}};
  for (int j : {0, 3, 10}) {
    for (int m : {5, 12, 20}) {
      for (int k : {13, 21, 30}) {
        if (!(j < m && m < k)) continue;
        ASSERT_TRUE(conditioned(s, m));
        EXPECT_NEAR(s.flip_between(j, k),
                    NoiseSchedule::compose_flip(s.flip_between(j, m), s.flip_between(m, k)),
                    1e-9)
            << j << "->" << m << "->" << k;
      }
    }
  }
}

TEST(FastSamplerTest, SkippedPosteriorMarginalisesIntermediateStep) {
  // q(x_j | x_k, x_0) computed directly over the jump [j, k] must equal the
  // exact marginalisation over any skipped visited step m (j < m < k):
  //   P(x_j | x_k, x_0) = sum_v P(x_j | x_m = v, x_0) P(x_m = v | x_k, x_0).
  // A gentle schedule keeps every level well-conditioned so the identity
  // holds to near machine precision.
  const NoiseSchedule s{ScheduleConfig{40, 0.01, 0.2}};
  for (int j : {0, 2, 10}) {
    for (int m : {5, 15, 25}) {
      for (int k : {16, 26, 40}) {
        if (!(j < m && m < k)) continue;
        for (int xk : {0, 1}) {
          for (int x0 : {0, 1}) {
            const double direct = posterior_p1(xk, x0, s.cumulative_flip(j),
                                               s.flip_between(j, k));
            const double pm1 = posterior_p1(xk, x0, s.cumulative_flip(m),
                                            s.flip_between(m, k));
            const double via1 = posterior_p1(1, x0, s.cumulative_flip(j),
                                             s.flip_between(j, m));
            const double via0 = posterior_p1(0, x0, s.cumulative_flip(j),
                                             s.flip_between(j, m));
            EXPECT_NEAR(direct, pm1 * via1 + (1.0 - pm1) * via0, 1e-9)
                << j << "<-" << m << "<-" << k << " xk=" << xk << " x0=" << x0;
          }
        }
      }
    }
  }
}

TEST(FastSamplerTest, ComposedJumpsMatchScheduleAndValidate) {
  const NoiseSchedule s{ScheduleConfig{100, 0.01, 0.5}};
  const std::vector<int> steps = {100, 40, 7, 1, 0};
  const auto jumps = composed_jumps(s, steps);
  ASSERT_EQ(jumps.size(), steps.size() - 1);
  for (std::size_t i = 0; i < jumps.size(); ++i) {
    EXPECT_EQ(jumps[i].k_from, steps[i]);
    EXPECT_EQ(jumps[i].k_to, steps[i + 1]);
    EXPECT_DOUBLE_EQ(jumps[i].flip_0to, s.cumulative_flip(steps[i + 1]));
    EXPECT_DOUBLE_EQ(jumps[i].flip_tofrom, s.flip_between(steps[i + 1], steps[i]));
  }
  EXPECT_THROW(composed_jumps(s, {50}), std::invalid_argument);
  EXPECT_THROW(composed_jumps(s, {50, 50, 0}), std::invalid_argument);
  EXPECT_THROW(composed_jumps(s, {50, 60, 0}), std::invalid_argument);
  EXPECT_THROW(composed_jumps(s, {101, 50, 0}), std::invalid_argument);
}

// ---- TimestepSchedule construction --------------------------------------

TEST(FastSamplerTest, AllKindsShareShapeInvariants) {
  const NoiseSchedule s{ScheduleConfig{}};
  for (ScheduleKind kind : {ScheduleKind::kNoiseUniform, ScheduleKind::kUniformStride,
                            ScheduleKind::kQuadratic, ScheduleKind::kSearched}) {
    for (int count : {2, 5, 16, 50}) {
      const auto steps = TimestepSchedule::make(s, kind, s.steps(), count);
      ASSERT_GE(steps.size(), 3u) << to_string(kind);
      EXPECT_EQ(steps.front(), s.steps()) << to_string(kind);
      EXPECT_EQ(steps[steps.size() - 2], 1) << to_string(kind);
      EXPECT_EQ(steps.back(), 0) << to_string(kind);
      for (std::size_t i = 1; i < steps.size(); ++i) {
        ASSERT_LT(steps[i], steps[i - 1]) << to_string(kind) << " count=" << count;
      }
      EXPECT_NO_THROW(TimestepSchedule::validate(steps, s.steps()));
      // The budget is honoured approximately (list construction may merge
      // adjacent targets) and never exceeded by more than the forced {1, 0}
      // tail.
      EXPECT_LE(static_cast<int>(steps.size()), count + 2) << to_string(kind);
    }
  }
}

TEST(FastSamplerTest, DegenerateBudgetYieldsFullChainForEveryKind) {
  // THE stride-1 invariant: count <= 0 or >= k_start collapses every kind to
  // the identical full list, so "fast sampling, stride 1" IS the original
  // chain.
  const NoiseSchedule s{ScheduleConfig{64, 0.01, 0.5}};
  std::vector<int> full;
  for (int k = 64; k >= 0; --k) full.push_back(k);
  for (ScheduleKind kind : {ScheduleKind::kNoiseUniform, ScheduleKind::kUniformStride,
                            ScheduleKind::kQuadratic, ScheduleKind::kSearched}) {
    for (int count : {0, -3, 64, 65, 1000}) {
      EXPECT_EQ(TimestepSchedule::make(s, kind, 64, count), full)
          << to_string(kind) << " count=" << count;
    }
  }
}

TEST(FastSamplerTest, KindStringsRoundTrip) {
  for (ScheduleKind kind : {ScheduleKind::kNoiseUniform, ScheduleKind::kUniformStride,
                            ScheduleKind::kQuadratic, ScheduleKind::kSearched}) {
    EXPECT_TRUE(is_schedule_kind(to_string(kind)));
    EXPECT_EQ(schedule_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_FALSE(is_schedule_kind("ddim"));
  EXPECT_THROW(schedule_kind_from_string("ddim"), std::invalid_argument);
}

TEST(FastSamplerTest, ValidateRejectsMalformedLists) {
  EXPECT_NO_THROW(TimestepSchedule::validate({100, 10, 1, 0}, 100));
  EXPECT_THROW(TimestepSchedule::validate({}, 100), std::invalid_argument);
  EXPECT_THROW(TimestepSchedule::validate({0}, 100), std::invalid_argument);
  EXPECT_THROW(TimestepSchedule::validate({100, 10, 1}, 100), std::invalid_argument);
  EXPECT_THROW(TimestepSchedule::validate({100, 10, 10, 0}, 100), std::invalid_argument);
  EXPECT_THROW(TimestepSchedule::validate({100, 50, 0}, 99), std::invalid_argument);
}

TEST(FastSamplerTest, RestrictToReusesSearchedListMidChain) {
  const std::vector<int> full = {1000, 600, 300, 100, 20, 1, 0};
  // Level present in the list: keep the suffix.
  EXPECT_EQ(TimestepSchedule::restrict_to(full, 300), (std::vector<int>{300, 100, 20, 1, 0}));
  // Level absent: it becomes the new head.
  EXPECT_EQ(TimestepSchedule::restrict_to(full, 250), (std::vector<int>{250, 100, 20, 1, 0}));
  // Very low starts still produce a walkable {k, ..., 1, 0} list.
  EXPECT_EQ(TimestepSchedule::restrict_to(full, 1), (std::vector<int>{1, 0}));
  EXPECT_EQ(TimestepSchedule::restrict_to(full, 2), (std::vector<int>{2, 1, 0}));
}

// ---- sampler plumbing ----------------------------------------------------

class FastSamplerFixture : public ::testing::Test {
 protected:
  FastSamplerFixture() : schedule_(ScheduleConfig{}), denoiser_(make_denoiser()) {}

  TabularDenoiser make_denoiser() {
    TabularConfig cfg;
    cfg.conditions = 1;
    cfg.draws_per_bucket = 3;
    TabularDenoiser d(schedule_, cfg);
    util::Rng rng(1);
    std::vector<squish::Topology> data;
    for (int p = 2; p <= 4; ++p) data.push_back(stripes(32, p));
    d.fit(data, 0, rng);
    return d;
  }

  NoiseSchedule schedule_;
  TabularDenoiser denoiser_;
};

TEST_F(FastSamplerFixture, KindAwareNoiseUniformMatchesLegacyByteForByte) {
  const DiffusionSampler s(schedule_, denoiser_);
  for (int count : {0, 4, 16, 50, 1000}) {
    EXPECT_EQ(s.make_timesteps(count, ScheduleKind::kNoiseUniform), s.make_timesteps(count));
    EXPECT_EQ(s.make_timesteps_from(40, count, ScheduleKind::kNoiseUniform),
              s.make_timesteps_from(40, count));
  }
}

TEST_F(FastSamplerFixture, SearchedFallsBackToNoiseUniformWhenUnset) {
  const DiffusionSampler s(schedule_, denoiser_);
  EXPECT_TRUE(s.searched_timesteps().empty());
  EXPECT_EQ(s.make_timesteps(16, ScheduleKind::kSearched),
            s.make_timesteps(16, ScheduleKind::kNoiseUniform));
}

TEST_F(FastSamplerFixture, SearchedListIsRestrictedToPartialChains) {
  DiffusionSampler s(schedule_, denoiser_);
  const std::vector<int> list = {1000, 600, 300, 100, 20, 1, 0};
  s.set_searched_timesteps(list);
  EXPECT_EQ(s.make_timesteps(4, ScheduleKind::kSearched), list);
  EXPECT_EQ(s.make_timesteps_from(300, 3, ScheduleKind::kSearched),
            (std::vector<int>{300, 100, 20, 1, 0}));
  // Degenerate budgets still mean "full chain", even with a registered list.
  EXPECT_EQ(s.make_timesteps(0, ScheduleKind::kSearched),
            s.make_timesteps(0, ScheduleKind::kNoiseUniform));
  EXPECT_THROW(s.set_searched_timesteps({10, 20, 0}), std::invalid_argument);
}

TEST_F(FastSamplerFixture, Stride1BitIdenticalAcrossKindsTabular) {
  // sample_steps = 0 (and = K) are degenerate budgets: every kind must walk
  // the identical full chain and consume the identical Rng stream, making
  // the outputs bit-equal — the regression anchor for the existing goldens.
  const DiffusionSampler s(schedule_, denoiser_);
  SampleConfig base;
  base.rows = 24;
  base.cols = 16;
  base.sample_steps = 0;
  base.polish_rounds = 1;
  util::Rng ref_rng(11);
  const squish::Topology ref = s.sample(base, ref_rng);
  for (ScheduleKind kind : {ScheduleKind::kUniformStride, ScheduleKind::kQuadratic,
                            ScheduleKind::kSearched}) {
    SampleConfig cfg = base;
    cfg.schedule_kind = kind;
    util::Rng rng(11);
    EXPECT_EQ(s.sample(cfg, rng), ref) << to_string(kind) << " steps=0";
    cfg.sample_steps = schedule_.steps();
    util::Rng rng2(11);
    EXPECT_EQ(s.sample(cfg, rng2), ref) << to_string(kind) << " steps=K";
  }
}

TEST_F(FastSamplerFixture, Stride1BitIdenticalAcrossKindsMlp) {
  util::Rng init(3);
  const MlpDenoiser mlp(schedule_, MlpConfig{1, 16, 1}, init);
  const DiffusionSampler s(schedule_, mlp);
  SampleConfig base;
  base.rows = 12;
  base.cols = 12;
  base.sample_steps = 0;
  base.polish_rounds = 1;
  util::Rng ref_rng(21);
  const squish::Topology ref = s.sample(base, ref_rng);
  for (ScheduleKind kind : {ScheduleKind::kUniformStride, ScheduleKind::kQuadratic,
                            ScheduleKind::kSearched}) {
    SampleConfig cfg = base;
    cfg.schedule_kind = kind;
    cfg.sample_steps = 0;
    util::Rng rng(21);
    EXPECT_EQ(s.sample(cfg, rng), ref) << to_string(kind);
  }
}

TEST_F(FastSamplerFixture, FewStepKindsProduceValidDistinctChains) {
  const DiffusionSampler s(schedule_, denoiser_);
  const auto nu = s.make_timesteps(50, ScheduleKind::kNoiseUniform);
  const auto us = s.make_timesteps(50, ScheduleKind::kUniformStride);
  const auto qd = s.make_timesteps(50, ScheduleKind::kQuadratic);
  // Same budget, genuinely different placements (else the knob is dead).
  EXPECT_NE(nu, us);
  EXPECT_NE(nu, qd);
  EXPECT_NE(us, qd);
  // Uniform stride really is (near-)uniform in k.
  for (std::size_t i = 0; i + 2 < us.size(); ++i) {
    EXPECT_NEAR(us[i] - us[i + 1], 1000 / 50, 2) << "jump " << i;
  }
  // Low-k concentration ordering on the paper's schedule: noise-uniform
  // spends nearly the whole budget below the mixing point, the uniform
  // stride spends almost nothing there, quadratic sits between them.
  EXPECT_LT(qd[1], us[1]);
  EXPECT_GT(qd[1], nu[1]);
}

TEST_F(FastSamplerFixture, GreedySearchImprovesHeldOutJumpLoss) {
  std::vector<std::vector<squish::Topology>> held_out(1);
  for (int p = 2; p <= 4; ++p) held_out[0].push_back(stripes(32, p));
  SearchConfig cfg;
  cfg.budget = 8;
  cfg.candidate_pool = 24;
  cfg.max_per_class = 2;
  cfg.probes = 1;
  const SearchResult res = search_timesteps(schedule_, denoiser_, held_out, cfg);
  ASSERT_GE(res.timesteps.size(), 3u);
  EXPECT_NO_THROW(TimestepSchedule::validate(res.timesteps, schedule_.steps()));
  EXPECT_EQ(res.timesteps.front(), schedule_.steps());
  EXPECT_EQ(static_cast<int>(res.timesteps.size()), cfg.budget + 1);  // + terminal 0
  // Greedy insertion only ever adds the best split, so the summed jump loss
  // must be monotonically non-increasing from the {K, 1, 0} seed.
  EXPECT_LE(res.final_loss, res.initial_loss + 1e-12);
  // Deterministic in the config seed.
  const SearchResult again = search_timesteps(schedule_, denoiser_, held_out, cfg);
  EXPECT_EQ(res.timesteps, again.timesteps);
  EXPECT_DOUBLE_EQ(res.final_loss, again.final_loss);
}

}  // namespace
}  // namespace cp::diffusion
