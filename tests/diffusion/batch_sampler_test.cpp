#include "diffusion/batch_sampler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "diffusion/cascade.h"
#include "diffusion/tabular_denoiser.h"
#include "squish/squish.h"
#include "util/thread_pool.h"

namespace cp::diffusion {
namespace {

squish::Topology stripes(int n, int period) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

class BatchSamplerTest : public ::testing::Test {
 protected:
  BatchSamplerTest() : schedule_(ScheduleConfig{}), denoiser_(make_denoiser()) {}

  TabularDenoiser make_denoiser() {
    TabularConfig cfg;
    cfg.conditions = 1;
    cfg.draws_per_bucket = 3;
    TabularDenoiser d(schedule_, cfg);
    util::Rng rng(1);
    std::vector<squish::Topology> data;
    for (int p = 2; p <= 4; ++p) data.push_back(stripes(32, p));
    d.fit(data, 0, rng);
    return d;
  }

  SampleConfig small_config() const {
    SampleConfig cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    cfg.sample_steps = 6;
    cfg.polish_rounds = 1;
    return cfg;
  }

  NoiseSchedule schedule_;
  TabularDenoiser denoiser_;
};

TEST_F(BatchSamplerTest, SerialAndFourThreadsBitIdentical) {
  DiffusionSampler sampler(schedule_, denoiser_);
  ASSERT_TRUE(sampler.thread_safe());
  const SampleConfig cfg = small_config();
  const int count = 12;

  const BatchSampler serial(sampler, nullptr);
  EXPECT_FALSE(serial.parallel());
  const std::vector<squish::Topology> a = serial.sample_batch(cfg, count, util::Rng(77));

  util::ThreadPool pool(4);
  const BatchSampler fanned(sampler, &pool);
  EXPECT_TRUE(fanned.parallel());
  const std::vector<squish::Topology> b = fanned.sample_batch(cfg, count, util::Rng(77));

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "sample " << i << " differs between 1 and 4 threads";
  }
}

TEST_F(BatchSamplerTest, ThreadCountsTwoAndEightAgreeToo) {
  DiffusionSampler sampler(schedule_, denoiser_);
  const SampleConfig cfg = small_config();
  std::vector<std::vector<squish::Topology>> batches;
  for (int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    const BatchSampler batch(sampler, threads > 1 ? &pool : nullptr);
    batches.push_back(batch.sample_batch(cfg, 9, util::Rng(123)));
  }
  EXPECT_EQ(batches[0], batches[1]);
  EXPECT_EQ(batches[0], batches[2]);
}

TEST_F(BatchSamplerTest, FirstStreamOffsetsComposeAcrossRounds) {
  // Generating [0, 8) in one call must equal [0, 4) + [4, 8) in two calls —
  // the contract legal-pattern selection relies on when it samples in rounds.
  DiffusionSampler sampler(schedule_, denoiser_);
  const SampleConfig cfg = small_config();
  const BatchSampler batch(sampler, nullptr);
  const util::Rng root(2024);
  const auto whole = batch.sample_batch(cfg, 8, root);
  auto head = batch.sample_batch(cfg, 4, root, /*first_stream=*/0);
  const auto tail = batch.sample_batch(cfg, 4, root, /*first_stream=*/4);
  head.insert(head.end(), tail.begin(), tail.end());
  EXPECT_EQ(whole, head);
}

TEST_F(BatchSamplerTest, CascadeBatchIsDeterministicAcrossThreads) {
  TabularConfig cfg;
  cfg.conditions = 1;
  cfg.draws_per_bucket = 3;
  TabularDenoiser coarse(schedule_, cfg);
  util::Rng fit_rng(3);
  std::vector<squish::Topology> coarse_data;
  for (int p = 2; p <= 4; ++p)
    coarse_data.push_back(squish::downsample_majority(stripes(32, p), 4));
  coarse.fit(coarse_data, 0, fit_rng);
  const CascadeSampler cascade(schedule_, coarse, denoiser_, CascadeConfig{});
  ASSERT_TRUE(cascade.thread_safe());

  SampleConfig sc;
  sc.rows = 32;
  sc.cols = 32;
  sc.sample_steps = 6;
  const BatchSampler serial(cascade, nullptr);
  util::ThreadPool pool(3);
  const BatchSampler fanned(cascade, &pool);
  EXPECT_EQ(serial.sample_batch(sc, 6, util::Rng(5)), fanned.sample_batch(sc, 6, util::Rng(5)));
}

TEST_F(BatchSamplerTest, ModifyBatchDeterministicAndKeepsMask) {
  DiffusionSampler sampler(schedule_, denoiser_);
  ModifyConfig mc;
  mc.sample_steps = 6;
  std::vector<squish::Topology> known, keeps;
  for (int i = 0; i < 6; ++i) {
    known.push_back(stripes(16, 2 + i % 3));
    squish::Topology keep(16, 16, 0);
    for (int r = 0; r < 16; ++r) {
      for (int c = 0; c < 8; ++c) keep.set(r, c, 1);  // keep the left half
    }
    keeps.push_back(keep);
  }

  const BatchSampler serial(sampler, nullptr);
  util::ThreadPool pool(4);
  const BatchSampler fanned(sampler, &pool);
  const auto a = serial.modify_batch(known, keeps, mc, util::Rng(99));
  const auto b = fanned.modify_batch(known, keeps, mc, util::Rng(99));
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), known.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (int r = 0; r < 16; ++r) {
      for (int c = 0; c < 8; ++c) {
        ASSERT_EQ(a[i].at(r, c), known[i].at(r, c)) << "kept region was modified";
      }
    }
  }
}

TEST_F(BatchSamplerTest, ModifyBatchValidatesLengths) {
  DiffusionSampler sampler(schedule_, denoiser_);
  const BatchSampler batch(sampler, nullptr);
  std::vector<squish::Topology> known(2, stripes(16, 2));
  std::vector<squish::Topology> keeps(1, squish::Topology(16, 16, 0));
  EXPECT_THROW(batch.modify_batch(known, keeps, ModifyConfig{}, util::Rng(1)),
               std::invalid_argument);
}

// ---- Rng::fork(i) stream properties -------------------------------------

TEST(RngForkStreamTest, StatelessForkIsReproducible) {
  util::Rng root(42);
  // Consume the root heavily; fork(i) must not care.
  for (int i = 0; i < 1000; ++i) root.next_u64();
  util::Rng fresh(42);
  for (std::uint64_t stream : {0ULL, 1ULL, 2ULL, 63ULL, 1ULL << 40}) {
    util::Rng a = root.fork(stream);
    util::Rng b = fresh.fork(stream);
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(a.next_u64(), b.next_u64()) << "stream " << stream;
    }
  }
}

TEST(RngForkStreamTest, DistinctStreamsDiffer) {
  const util::Rng root(7);
  util::Rng a = root.fork(0);
  util::Rng b = root.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0) << "adjacent streams must not collide";
}

TEST(RngForkStreamTest, StreamsPairwiseDecorrelatedChiSquareSmoke) {
  // Chi-square smoke test on the XOR of paired draws from adjacent streams:
  // if streams i and i+1 were correlated, xor bits would be biased. Bucket
  // the low byte of the xor into 16 bins and check the statistic is sane.
  const util::Rng root(20240806);
  const int kPairs = 32;
  const int kDraws = 512;
  for (int p = 0; p < kPairs; ++p) {
    util::Rng a = root.fork(static_cast<std::uint64_t>(2 * p));
    util::Rng b = root.fork(static_cast<std::uint64_t>(2 * p + 1));
    std::vector<int> bins(16, 0);
    for (int d = 0; d < kDraws; ++d) {
      const std::uint64_t x = a.next_u64() ^ b.next_u64();
      ++bins[static_cast<std::size_t>(x & 0xF)];
    }
    const double expected = static_cast<double>(kDraws) / 16.0;
    double chi2 = 0.0;
    for (int bin : bins) {
      const double diff = static_cast<double>(bin) - expected;
      chi2 += diff * diff / expected;
    }
    // 15 degrees of freedom: mean 15, 99.9th percentile ~37.7. Generous
    // bound — this is a smoke check for gross correlation, not NIST.
    EXPECT_LT(chi2, 45.0) << "streams " << 2 * p << " and " << 2 * p + 1
                          << " look correlated";
  }
}

TEST(RngForkStreamTest, ForkedChildrenMatchDirectConstruction) {
  // fork(i).seed() must be usable to reconstruct the exact child stream.
  const util::Rng root(555);
  util::Rng child = root.fork(9);
  util::Rng rebuilt(child.seed());
  for (int i = 0; i < 32; ++i) ASSERT_EQ(child.next_u64(), rebuilt.next_u64());
}

}  // namespace
}  // namespace cp::diffusion
