#include "diffusion/schedule.h"

#include <gtest/gtest.h>

namespace cp::diffusion {
namespace {

TEST(ScheduleTest, PaperDefaultsShape) {
  const NoiseSchedule s{ScheduleConfig{}};
  EXPECT_EQ(s.steps(), 1000);
  EXPECT_NEAR(s.beta(1), 0.01, 1e-12);
  EXPECT_NEAR(s.beta(1000), 0.5, 1e-12);
  // Linear interpolation (Equation 4).
  EXPECT_NEAR(s.beta(500), 0.01 + 499.0 / 999.0 * 0.49, 1e-12);
}

TEST(ScheduleTest, CumulativeFlipMonotoneAndBounded) {
  const NoiseSchedule s{ScheduleConfig{}};
  EXPECT_DOUBLE_EQ(s.cumulative_flip(0), 0.0);
  double prev = 0.0;
  for (int k = 1; k <= s.steps(); ++k) {
    const double b = s.cumulative_flip(k);
    EXPECT_GE(b, prev - 1e-12);  // saturation-level float noise allowed
    EXPECT_LE(b, 0.5 + 1e-12);
    prev = b;
  }
  // The terminal distribution is (essentially) uniform.
  EXPECT_NEAR(s.cumulative_flip(s.steps()), 0.5, 1e-9);
}

TEST(ScheduleTest, CompositionIdentity) {
  // bbar_k must equal the closed-form composition of single-step betas.
  const NoiseSchedule s{ScheduleConfig{100, 0.01, 0.3}};
  double manual = 0.0;
  for (int k = 1; k <= 100; ++k) {
    manual = manual * (1.0 - s.beta(k)) + (1.0 - manual) * s.beta(k);
    EXPECT_NEAR(s.cumulative_flip(k), manual, 1e-12);
  }
}

TEST(ScheduleTest, FlipBetweenComposes) {
  const NoiseSchedule s{ScheduleConfig{200, 0.01, 0.4}};
  // For any j < k: bbar_k == bbar_j (1-f) + (1-bbar_j) f  with f = flip_between.
  for (int j : {0, 5, 50, 120}) {
    for (int k : {6, 60, 150, 200}) {
      if (j >= k) continue;
      const double f = s.flip_between(j, k);
      const double bj = s.cumulative_flip(j);
      EXPECT_NEAR(s.cumulative_flip(k), bj * (1 - f) + (1 - bj) * f, 1e-10);
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 0.5 + 1e-12);
    }
  }
}

TEST(ScheduleTest, FlipBetweenIdentityAtSameStep) {
  const NoiseSchedule s{ScheduleConfig{50, 0.02, 0.5}};
  EXPECT_NEAR(s.flip_between(10, 10), 0.0, 1e-12);
}

TEST(ScheduleTest, StepForFlipIsInverse) {
  const NoiseSchedule s{ScheduleConfig{}};
  for (double f : {0.0, 0.05, 0.2, 0.4, 0.49}) {
    const int k = s.step_for_flip(f);
    EXPECT_GE(s.cumulative_flip(k), f);
    if (k > 0) EXPECT_LT(s.cumulative_flip(k - 1), f);
  }
  EXPECT_EQ(s.step_for_flip(0.0), 0);
}

TEST(ScheduleTest, ValidationRejectsBadConfigs) {
  EXPECT_THROW(NoiseSchedule(ScheduleConfig{0, 0.01, 0.5}), std::invalid_argument);
  EXPECT_THROW(NoiseSchedule(ScheduleConfig{10, -0.1, 0.5}), std::invalid_argument);
  EXPECT_THROW(NoiseSchedule(ScheduleConfig{10, 0.4, 0.2}), std::invalid_argument);
  EXPECT_THROW(NoiseSchedule(ScheduleConfig{10, 0.1, 0.7}), std::invalid_argument);
}

TEST(ScheduleTest, SingleStepSchedule) {
  const NoiseSchedule s{ScheduleConfig{1, 0.3, 0.3}};
  EXPECT_NEAR(s.beta(1), 0.3, 1e-12);
  EXPECT_NEAR(s.cumulative_flip(1), 0.3, 1e-12);
}

TEST(ScheduleTest, FlipBetweenBadRangeThrows) {
  const NoiseSchedule s{ScheduleConfig{10, 0.01, 0.5}};
  EXPECT_THROW(s.flip_between(5, 3), std::out_of_range);
  EXPECT_THROW(s.flip_between(-1, 3), std::out_of_range);
  EXPECT_THROW(s.flip_between(0, 11), std::out_of_range);
}

}  // namespace
}  // namespace cp::diffusion
