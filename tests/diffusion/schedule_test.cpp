#include "diffusion/schedule.h"

#include <gtest/gtest.h>

namespace cp::diffusion {
namespace {

TEST(ScheduleTest, PaperDefaultsShape) {
  const NoiseSchedule s{ScheduleConfig{}};
  EXPECT_EQ(s.steps(), 1000);
  EXPECT_NEAR(s.beta(1), 0.01, 1e-12);
  EXPECT_NEAR(s.beta(1000), 0.5, 1e-12);
  // Linear interpolation (Equation 4).
  EXPECT_NEAR(s.beta(500), 0.01 + 499.0 / 999.0 * 0.49, 1e-12);
}

TEST(ScheduleTest, CumulativeFlipMonotoneAndBounded) {
  const NoiseSchedule s{ScheduleConfig{}};
  EXPECT_DOUBLE_EQ(s.cumulative_flip(0), 0.0);
  double prev = 0.0;
  for (int k = 1; k <= s.steps(); ++k) {
    const double b = s.cumulative_flip(k);
    EXPECT_GE(b, prev - 1e-12);  // saturation-level float noise allowed
    EXPECT_LE(b, 0.5 + 1e-12);
    prev = b;
  }
  // The terminal distribution is (essentially) uniform.
  EXPECT_NEAR(s.cumulative_flip(s.steps()), 0.5, 1e-9);
}

TEST(ScheduleTest, CompositionIdentity) {
  // bbar_k must equal the closed-form composition of single-step betas.
  const NoiseSchedule s{ScheduleConfig{100, 0.01, 0.3}};
  double manual = 0.0;
  for (int k = 1; k <= 100; ++k) {
    manual = manual * (1.0 - s.beta(k)) + (1.0 - manual) * s.beta(k);
    EXPECT_NEAR(s.cumulative_flip(k), manual, 1e-12);
  }
}

TEST(ScheduleTest, FlipBetweenComposes) {
  const NoiseSchedule s{ScheduleConfig{200, 0.01, 0.4}};
  // For any j < k: bbar_k == bbar_j (1-f) + (1-bbar_j) f  with f = flip_between.
  for (int j : {0, 5, 50, 120}) {
    for (int k : {6, 60, 150, 200}) {
      if (j >= k) continue;
      const double f = s.flip_between(j, k);
      const double bj = s.cumulative_flip(j);
      EXPECT_NEAR(s.cumulative_flip(k), bj * (1 - f) + (1 - bj) * f, 1e-10);
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 0.5 + 1e-12);
    }
  }
}

TEST(ScheduleTest, FlipBetweenIdentityAtSameStep) {
  const NoiseSchedule s{ScheduleConfig{50, 0.02, 0.5}};
  EXPECT_NEAR(s.flip_between(10, 10), 0.0, 1e-12);
}

TEST(ScheduleTest, StepForFlipIsInverse) {
  const NoiseSchedule s{ScheduleConfig{}};
  for (double f : {0.0, 0.05, 0.2, 0.4, 0.49}) {
    const int k = s.step_for_flip(f);
    EXPECT_GE(s.cumulative_flip(k), f);
    if (k > 0) EXPECT_LT(s.cumulative_flip(k - 1), f);
  }
  EXPECT_EQ(s.step_for_flip(0.0), 0);
}

TEST(ScheduleTest, ValidationRejectsBadConfigs) {
  EXPECT_THROW(NoiseSchedule(ScheduleConfig{0, 0.01, 0.5}), std::invalid_argument);
  EXPECT_THROW(NoiseSchedule(ScheduleConfig{10, -0.1, 0.5}), std::invalid_argument);
  EXPECT_THROW(NoiseSchedule(ScheduleConfig{10, 0.4, 0.2}), std::invalid_argument);
  EXPECT_THROW(NoiseSchedule(ScheduleConfig{10, 0.1, 0.7}), std::invalid_argument);
}

TEST(ScheduleTest, SingleStepSchedule) {
  const NoiseSchedule s{ScheduleConfig{1, 0.3, 0.3}};
  EXPECT_NEAR(s.beta(1), 0.3, 1e-12);
  EXPECT_NEAR(s.cumulative_flip(1), 0.3, 1e-12);
}

TEST(ScheduleTest, FlipBetweenBadRangeThrows) {
  const NoiseSchedule s{ScheduleConfig{10, 0.01, 0.5}};
  EXPECT_THROW(s.flip_between(5, 3), std::out_of_range);
  EXPECT_THROW(s.flip_between(-1, 3), std::out_of_range);
  EXPECT_THROW(s.flip_between(0, 11), std::out_of_range);
  EXPECT_THROW(s.flip_between_product(5, 3), std::out_of_range);
  EXPECT_THROW(s.flip_between_product(-1, 3), std::out_of_range);
  EXPECT_THROW(s.flip_between_product(0, 11), std::out_of_range);
}

// The identities above must hold for ANY schedule length, not just the
// paper's K = 1000 — the cascade's coarse stage and the test fixtures run
// tiny and odd K values where off-by-one bugs in the closed forms actually
// bite. Parameterised over a deliberately awkward set.
//
// Caveat shared by all of them: once a level is fully mixed (cumulative
// flip at 0.5 to float precision) the flip_between recurrence is no longer
// identifiable and returns 0.5 by convention. The exact identities are
// asserted from well-conditioned start levels, the convention is asserted
// past the implementation's cutoff, and the narrow ill-conditioned band in
// between (denominator in (1e-12, 1e-6]) is skipped — there the recurrence
// runs but division noise swamps any sensible tolerance.
class ScheduleSizeTest : public ::testing::TestWithParam<int> {
 protected:
  static double mix_margin(const NoiseSchedule& s, int level) {
    return 1.0 - 2.0 * s.cumulative_flip(level);
  }
  static bool conditioned(const NoiseSchedule& s, int level) {
    return mix_margin(s, level) > 1e-6;
  }
  static bool saturated(const NoiseSchedule& s, int level) {
    return mix_margin(s, level) <= 1e-12;  // flip_between's own cutoff
  }
};

TEST_P(ScheduleSizeTest, CumulativeFlipMonotoneWithEndpoints) {
  const int K = GetParam();
  const NoiseSchedule s{ScheduleConfig{K, 0.01, 0.5}};
  ASSERT_EQ(s.steps(), K);
  EXPECT_DOUBLE_EQ(s.cumulative_flip(0), 0.0);  // bbar_0: nothing flipped yet
  double prev = 0.0;
  for (int k = 1; k <= K; ++k) {
    const double b = s.cumulative_flip(k);
    EXPECT_GE(b, prev - 1e-12) << "k=" << k;
    EXPECT_LE(b, 0.5 + 1e-12) << "k=" << k;
    prev = b;
  }
  // beta_K = 0.5 forces exact terminal uniformity at every K.
  EXPECT_NEAR(s.cumulative_flip(K), 0.5, 1e-12);
}

TEST_P(ScheduleSizeTest, FlipBetweenEndpointIdentities) {
  const int K = GetParam();
  const NoiseSchedule s{ScheduleConfig{K, 0.01, 0.5}};
  for (int k = 0; k <= K; ++k) {
    // Starting at the clean state, the composed channel IS the cumulative.
    EXPECT_NEAR(s.flip_between(0, k), s.cumulative_flip(k), 1e-12) << "k=" << k;
    // The empty jump never flips — until the level is fully mixed, where
    // the recurrence degenerates and the 0.5 convention takes over.
    if (saturated(s, k)) {
      EXPECT_DOUBLE_EQ(s.flip_between(k, k), 0.5) << "k=" << k;
    } else if (conditioned(s, k)) {
      EXPECT_NEAR(s.flip_between(k, k), 0.0, 1e-12) << "k=" << k;
    }
  }
}

TEST_P(ScheduleSizeTest, ProductFormMatchesRecurrenceEverywhere) {
  const int K = GetParam();
  const NoiseSchedule s{ScheduleConfig{K, 0.01, 0.5}};
  for (int j = 0; j <= K; ++j) {
    for (int k = j; k <= K; ++k) {
      if (saturated(s, j)) {
        EXPECT_DOUBLE_EQ(s.flip_between(j, k), 0.5) << "jump " << j << "->" << k;
      } else if (conditioned(s, j)) {
        EXPECT_NEAR(s.flip_between(j, k), s.flip_between_product(j, k), 1e-9)
            << "jump " << j << "->" << k;
      }
    }
  }
}

TEST_P(ScheduleSizeTest, ComposeFlipSplitsEveryJump) {
  const int K = GetParam();
  const NoiseSchedule s{ScheduleConfig{K, 0.01, 0.5}};
  for (int j = 0; j <= K; ++j) {
    for (int m = j; m <= K; ++m) {
      if (!conditioned(s, m)) continue;  // recurrence past mixing: convention
      for (int k = m; k <= K; k += 3) {
        EXPECT_NEAR(s.flip_between(j, k),
                    NoiseSchedule::compose_flip(s.flip_between(j, m), s.flip_between(m, k)),
                    1e-9)
            << j << "->" << m << "->" << k;
      }
    }
  }
}

// K = 1 is excluded: the linear interpolation pins beta_1 = beta_start
// there (covered by ScheduleTest.SingleStepSchedule), so the terminal-
// uniformity claim does not apply.
INSTANTIATE_TEST_SUITE_P(SmallAndOddK, ScheduleSizeTest, ::testing::Values(2, 7, 64));

}  // namespace
}  // namespace cp::diffusion
