// Concurrency suite for the MLP denoiser's stateless inference path.
//
// Lives in its own binary (name contains "batch") so the ThreadSanitizer
// build exercises it: ctest -R 'thread_pool|batch|obs_stress'. The claims
// locked in here: MlpDenoiser::thread_safe_inference() is true, concurrent
// predict_x0 / predict_x0_pixel calls on one instance are race-free and
// bit-identical to serial evaluation, and BatchSampler / evaluate_hybrid_loss
// actually fan out for the MLP with unchanged results.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "diffusion/batch_sampler.h"
#include "diffusion/mlp_denoiser.h"
#include "diffusion/precision.h"
#include "diffusion/trainer.h"
#include "diffusion/transition.h"
#include "util/thread_pool.h"

namespace cp::diffusion {
namespace {

squish::Topology stripes(int n, int period) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

TEST(MlpBatchInferTest, AdvertisesThreadSafeInference) {
  const NoiseSchedule s{ScheduleConfig{}};
  util::Rng rng(1);
  const MlpDenoiser d(s, MlpConfig{2, 16, 2}, rng);
  EXPECT_TRUE(d.thread_safe_inference());
  const DiffusionSampler sampler(s, d);
  EXPECT_TRUE(sampler.thread_safe());
}

TEST(MlpBatchInferTest, ConcurrentPredictX0MatchesSerialBitExactly) {
  const NoiseSchedule s{ScheduleConfig{}};
  util::Rng rng(2);
  const MlpDenoiser d(s, MlpConfig{2, 32, 2}, rng);

  // Distinct (grid, step, condition) work items, evaluated serially first.
  std::vector<squish::Topology> grids;
  for (int p = 2; p <= 5; ++p) grids.push_back(stripes(16, p));
  struct Item {
    int grid, k, cond;
  };
  std::vector<Item> items;
  for (int g = 0; g < static_cast<int>(grids.size()); ++g) {
    for (int k : {1, 17, 90}) {
      for (int cond : {0, 1}) items.push_back({g, k, cond});
    }
  }
  std::vector<ProbGrid> serial(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    d.predict_x0(grids[static_cast<std::size_t>(items[i].grid)], items[i].k, items[i].cond,
                 serial[i]);
  }

  // Same work spread over 4 raw threads hammering one denoiser instance.
  std::vector<ProbGrid> parallel(items.size());
  const int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < items.size(); i += kThreads) {
        d.predict_x0(grids[static_cast<std::size_t>(items[i].grid)], items[i].k,
                     items[i].cond, parallel[i]);
      }
    });
  }
  for (auto& w : workers) w.join();

  for (std::size_t i = 0; i < items.size(); ++i) {
    ASSERT_EQ(serial[i].size(), parallel[i].size());
    for (std::size_t j = 0; j < serial[i].size(); ++j) {
      ASSERT_EQ(serial[i][j], parallel[i][j]) << "item " << i << " pixel " << j;
    }
  }
}

TEST(MlpBatchInferTest, ConcurrentPixelPredictionsMatchSerial) {
  const NoiseSchedule s{ScheduleConfig{}};
  util::Rng rng(3);
  const MlpDenoiser d(s, MlpConfig{1, 16, 1}, rng);
  const squish::Topology x = stripes(12, 3);

  std::vector<float> serial(12 * 12);
  for (int r = 0; r < 12; ++r) {
    for (int c = 0; c < 12; ++c) serial[static_cast<std::size_t>(r) * 12 + c] =
        d.predict_x0_pixel(x, r, c, 40, 0);
  }

  std::vector<float> parallel(serial.size());
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < parallel.size(); i += 3) {
        const int r = static_cast<int>(i) / 12;
        const int c = static_cast<int>(i) % 12;
        parallel[i] = d.predict_x0_pixel(x, r, c, 40, 0);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "pixel " << i;
  }
}

TEST(MlpBatchInferTest, BatchSamplerFansOutForMlpWithBitIdenticalOutput) {
  const NoiseSchedule s{ScheduleConfig{}};
  util::Rng rng(4);
  const MlpDenoiser d(s, MlpConfig{1, 16, 1}, rng);
  const DiffusionSampler sampler(s, d);

  SampleConfig cfg;
  cfg.rows = 12;
  cfg.cols = 12;
  cfg.sample_steps = 5;
  cfg.polish_rounds = 1;
  const int count = 8;

  const BatchSampler serial(sampler, nullptr);
  EXPECT_FALSE(serial.parallel());
  const auto a = serial.sample_batch(cfg, count, util::Rng(77));

  util::ThreadPool pool(4);
  const BatchSampler fanned(sampler, &pool);
  // The whole point of the stateless infer path: the MLP no longer forces
  // the silent serial fallback.
  EXPECT_TRUE(fanned.parallel());
  const auto b = fanned.sample_batch(cfg, count, util::Rng(77));

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "sample " << i << " differs between serial and 4 threads";
  }
}

TEST(MlpBatchInferTest, RowQueryMatchesPixelQueryBitExactly) {
  // predict_x0_row is the batched twin of predict_x0_pixel — same features,
  // same kernels, rows of the GEMM are independent, so every column must
  // come back bit-identical on both precision tiers. Exercise interior rows
  // (plane gather) and both border rows (mirrored per-pixel loads).
  const NoiseSchedule s{ScheduleConfig{}};
  util::Rng rng(6);
  const MlpDenoiser d(s, MlpConfig{2, 24, 2}, rng);
  const squish::Topology x = stripes(14, 3);
  std::vector<float> row(14);
  for (const Precision prec : {Precision::kFp32, Precision::kInt8}) {
    const PrecisionScope scope(prec);
    for (int r : {0, 1, 7, 13}) {
      d.predict_x0_row(x, r, 40, 1, row.data());
      for (int c = 0; c < 14; ++c) {
        ASSERT_EQ(row[static_cast<std::size_t>(c)], d.predict_x0_pixel(x, r, c, 40, 1))
            << to_string(prec) << " row " << r << " col " << c;
      }
    }
  }
}

TEST(MlpBatchInferTest, PrecisionScopeIsThreadLocalAndRestores) {
  EXPECT_EQ(active_precision(), Precision::kFp32);
  {
    const PrecisionScope int8(Precision::kInt8);
    EXPECT_EQ(active_precision(), Precision::kInt8);
    {
      const PrecisionScope inner(Precision::kFp32);
      EXPECT_EQ(active_precision(), Precision::kFp32);
    }
    EXPECT_EQ(active_precision(), Precision::kInt8);
    // Another thread starts at the default: BatchSampler workers pick their
    // tier from the per-sample config, never from the submitting thread.
    Precision seen = Precision::kInt8;
    std::thread probe([&] { seen = active_precision(); });
    probe.join();
    EXPECT_EQ(seen, Precision::kFp32);
  }
  EXPECT_EQ(active_precision(), Precision::kFp32);
}

TEST(MlpBatchInferTest, ConcurrentInt8PredictionsMatchSerial) {
  // The quantized pack cache lives in the thread-local workspace like the
  // packed fp32 weights, so concurrent int8 queries must be race-free and
  // bit-identical to serial evaluation (TSAN covers the race half).
  const NoiseSchedule s{ScheduleConfig{}};
  util::Rng rng(7);
  const MlpDenoiser d(s, MlpConfig{1, 16, 1}, rng);
  const squish::Topology x = stripes(12, 3);

  std::vector<float> serial(12 * 12);
  {
    const PrecisionScope scope(Precision::kInt8);
    for (int r = 0; r < 12; ++r) {
      for (int c = 0; c < 12; ++c) {
        serial[static_cast<std::size_t>(r) * 12 + c] = d.predict_x0_pixel(x, r, c, 40, 0);
      }
    }
  }

  std::vector<float> parallel(serial.size());
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      const PrecisionScope scope(Precision::kInt8);  // per worker thread
      for (std::size_t i = static_cast<std::size_t>(t); i < parallel.size(); i += 3) {
        const int r = static_cast<int>(i) / 12;
        const int c = static_cast<int>(i) % 12;
        parallel[i] = d.predict_x0_pixel(x, r, c, 40, 0);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]) << "pixel " << i;
  }
}

TEST(MlpBatchInferTest, HybridLossEvaluationThreadCountInvariant) {
  const NoiseSchedule s{ScheduleConfig{}};
  util::Rng rng(5);
  const MlpDenoiser d(s, MlpConfig{1, 16, 1}, rng);
  std::vector<std::vector<squish::Topology>> per_class(1);
  for (int p = 2; p <= 4; ++p) per_class[0].push_back(stripes(16, p));

  const double serial = evaluate_hybrid_loss(d, s, per_class, 1e-3f, 12, 99, 1);
  const double fanned = evaluate_hybrid_loss(d, s, per_class, 1e-3f, 12, 99, 4);
  EXPECT_EQ(serial, fanned);
}

}  // namespace
}  // namespace cp::diffusion
