#include "diffusion/modification.h"

#include <gtest/gtest.h>

#include "diffusion/cascade.h"
#include "diffusion/tabular_denoiser.h"

namespace cp::diffusion {
namespace {

squish::Topology stripes(int n, int period) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

class ModificationTest : public ::testing::Test {
 protected:
  ModificationTest() : schedule_(ScheduleConfig{}), denoiser_(make_denoiser()) {}

  TabularDenoiser make_denoiser() {
    TabularConfig cfg;
    cfg.conditions = 1;
    cfg.draws_per_bucket = 3;
    TabularDenoiser d(schedule_, cfg);
    util::Rng rng(1);
    std::vector<squish::Topology> data;
    for (int p = 2; p <= 4; ++p) data.push_back(stripes(32, p));
    d.fit(data, 0, rng);
    return d;
  }

  NoiseSchedule schedule_;
  TabularDenoiser denoiser_;
};

TEST_F(ModificationTest, KeptRegionIsExactlyPreserved) {
  DiffusionSampler s(schedule_, denoiser_);
  const squish::Topology known = stripes(32, 2);
  squish::Topology keep(32, 32, 1);
  for (int r = 8; r < 24; ++r) {
    for (int c = 8; c < 24; ++c) keep.set(r, c, 0);
  }
  ModifyConfig cfg;
  cfg.sample_steps = 8;
  util::Rng rng(3);
  const squish::Topology out = modify(s, known, keep, cfg, rng);
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 32; ++c) {
      if (keep.at(r, c)) {
        ASSERT_EQ(out.at(r, c), known.at(r, c)) << "kept cell changed at " << r << "," << c;
      }
    }
  }
}

TEST_F(ModificationTest, RegeneratedRegionPlausible) {
  DiffusionSampler s(schedule_, denoiser_);
  const squish::Topology known = stripes(32, 2);
  squish::Topology keep(32, 32, 1);
  for (int r = 8; r < 24; ++r) {
    for (int c = 8; c < 24; ++c) keep.set(r, c, 0);
  }
  ModifyConfig cfg;
  cfg.sample_steps = 12;
  util::Rng rng(4);
  const squish::Topology out = modify(s, known, keep, cfg, rng);
  // The hole must not stay empty or become full.
  int filled = 0;
  for (int r = 8; r < 24; ++r) {
    for (int c = 8; c < 24; ++c) filled += out.at(r, c);
  }
  EXPECT_GT(filled, 16);
  EXPECT_LT(filled, 256 - 16);
}

TEST_F(ModificationTest, MaskDimensionMismatchThrows) {
  DiffusionSampler s(schedule_, denoiser_);
  ModifyConfig cfg;
  util::Rng rng(1);
  EXPECT_THROW(modify(s, squish::Topology(8, 8), squish::Topology(4, 4), cfg, rng),
               std::invalid_argument);
}

TEST_F(ModificationTest, FullKeepMaskIsIdentity) {
  DiffusionSampler s(schedule_, denoiser_);
  const squish::Topology known = stripes(16, 2);
  ModifyConfig cfg;
  cfg.sample_steps = 6;
  util::Rng rng(5);
  EXPECT_EQ(modify(s, known, squish::Topology(16, 16, 1), cfg, rng), known);
}

TEST_F(ModificationTest, ResampleRoundsSupported) {
  DiffusionSampler s(schedule_, denoiser_);
  const squish::Topology known = stripes(16, 2);
  squish::Topology keep(16, 16, 1);
  keep.set(8, 8, 0);
  ModifyConfig cfg;
  cfg.sample_steps = 6;
  cfg.resample_rounds = 3;
  util::Rng rng(6);
  const squish::Topology out = modify(s, known, keep, cfg, rng);
  EXPECT_EQ(out.rows(), 16);
}

TEST_F(ModificationTest, ModifyFromIntermediateState) {
  DiffusionSampler s(schedule_, denoiser_);
  const squish::Topology known = stripes(16, 2);
  squish::Topology keep(16, 16, 1);
  for (int r = 4; r < 12; ++r) keep.set(r, 7, 0);
  ModifyConfig cfg;
  cfg.sample_steps = 4;
  util::Rng rng(7);
  const squish::Topology out =
      modify_from(s, known, keep, known, /*k_start=*/20, cfg, rng);
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) {
      if (keep.at(r, c)) ASSERT_EQ(out.at(r, c), known.at(r, c));
    }
  }
}

TEST_F(ModificationTest, CascadeModifyPreservesKeptRegion) {
  TabularConfig ccfg;
  ccfg.conditions = 1;
  TabularDenoiser coarse(schedule_, ccfg);
  util::Rng fit_rng(2);
  std::vector<squish::Topology> coarse_data;
  for (int p = 2; p <= 4; ++p) {
    coarse_data.push_back(squish::downsample_majority(stripes(32, p), 4));
  }
  coarse.fit(coarse_data, 0, fit_rng);
  CascadeConfig cas_cfg;
  CascadeSampler cas(schedule_, coarse, denoiser_, cas_cfg);

  const squish::Topology known = stripes(32, 2);
  squish::Topology keep(32, 32, 1);
  for (int r = 0; r < 32; ++r) {
    for (int c = 16; c < 32; ++c) keep.set(r, c, 0);
  }
  ModifyConfig cfg;
  cfg.sample_steps = 8;
  util::Rng rng(8);
  const squish::Topology out = cas.modify(known, keep, cfg, rng);
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 16; ++c) ASSERT_EQ(out.at(r, c), known.at(r, c));
  }
}

TEST_F(ModificationTest, CascadeSampleShapeAndFactorCheck) {
  TabularConfig ccfg;
  ccfg.conditions = 1;
  TabularDenoiser coarse(schedule_, ccfg);
  util::Rng fit_rng(2);
  coarse.fit({squish::downsample_majority(stripes(32, 4), 4)}, 0, fit_rng);
  CascadeConfig cas_cfg;
  CascadeSampler cas(schedule_, coarse, denoiser_, cas_cfg);
  SampleConfig sc;
  sc.rows = 32;
  sc.cols = 32;
  util::Rng rng(3);
  EXPECT_EQ(cas.sample(sc, rng).rows(), 32);
  sc.rows = 30;  // not divisible by 4: padded to the cascade grid, cropped
  const squish::Topology odd = cas.sample(sc, rng);
  EXPECT_EQ(odd.rows(), 30);
  EXPECT_EQ(odd.cols(), 32);
  sc.rows = 0;
  EXPECT_THROW(cas.sample(sc, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cp::diffusion
