#include "diffusion/denoiser.h"

#include <gtest/gtest.h>

#include "diffusion/mlp_denoiser.h"
#include "diffusion/tabular_denoiser.h"
#include "diffusion/transition.h"

namespace cp::diffusion {
namespace {

squish::Topology stripes(int n, int period) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

TEST(UniformDenoiserTest, PredictsClassDensity) {
  UniformDenoiser d({0.2f, 0.7f});
  ProbGrid p0;
  squish::Topology x(4, 4);
  d.predict_x0(x, 10, 0, p0);
  ASSERT_EQ(p0.size(), 16u);
  EXPECT_FLOAT_EQ(p0[0], 0.2f);
  d.predict_x0(x, 10, 1, p0);
  EXPECT_FLOAT_EQ(p0[3], 0.7f);
  EXPECT_EQ(d.conditions(), 2);
  EXPECT_THROW(d.predict_x0(x, 1, 2, p0), std::out_of_range);
  EXPECT_FLOAT_EQ(d.predict_x0_pixel(x, 0, 0, 1, 1), 0.7f);
}

TEST(TabularDenoiserTest, NeighborhoodIndexDistinguishesContexts) {
  squish::Topology a(8, 8);
  squish::Topology b(8, 8);
  b.set(4, 4, 1);
  EXPECT_NE(TabularDenoiser::neighborhood_index(a, 4, 4),
            TabularDenoiser::neighborhood_index(b, 4, 4));
  EXPECT_EQ(TabularDenoiser::neighborhood_index(a, 4, 4), 0);
}

TEST(TabularDenoiserTest, MirrorPaddingAtBorders) {
  squish::Topology t(8, 8, 1);
  // No out-of-bounds access, full index at corner.
  EXPECT_EQ(TabularDenoiser::neighborhood_index(t, 0, 0),
            (1 << TabularDenoiser::kNeighbors) - 1);
}

TEST(TabularDenoiserTest, LearnsIdentityAtLowNoise) {
  const NoiseSchedule s{ScheduleConfig{}};
  TabularConfig cfg;
  cfg.conditions = 1;
  cfg.draws_per_bucket = 4;
  TabularDenoiser d(s, cfg);
  util::Rng rng(1);
  std::vector<squish::Topology> data;
  for (int i = 0; i < 12; ++i) data.push_back(stripes(32, 2 + i % 3));
  d.fit(data, 0, rng);

  // At k=1 (almost no noise) the prediction should essentially echo x0.
  const squish::Topology x0 = stripes(32, 2);
  ProbGrid p0;
  d.predict_x0(x0, 1, 0, p0);
  double on = 0, off = 0;
  int on_n = 0, off_n = 0;
  std::size_t i = 0;
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 32; ++c, ++i) {
      if (x0.at(r, c)) {
        on += p0[i];
        ++on_n;
      } else {
        off += p0[i];
        ++off_n;
      }
    }
  }
  EXPECT_GT(on / on_n, 0.85);
  EXPECT_LT(off / off_n, 0.15);
}

TEST(TabularDenoiserTest, ClassDensityTracked) {
  const NoiseSchedule s{ScheduleConfig{}};
  TabularConfig cfg;
  cfg.conditions = 2;
  cfg.draws_per_bucket = 1;
  TabularDenoiser d(s, cfg);
  util::Rng rng(1);
  d.fit({stripes(16, 2)}, 0, rng);             // density 0.5
  d.fit({squish::Topology(16, 16, 0)}, 1, rng); // density 0
  EXPECT_NEAR(d.class_density(0), 0.5, 1e-9);
  EXPECT_NEAR(d.class_density(1), 0.0, 1e-9);
  EXPECT_NEAR(d.prior_density(0), 0.5, 1e-9);
}

TEST(TabularDenoiserTest, PixelPredictionMatchesGrid) {
  const NoiseSchedule s{ScheduleConfig{}};
  TabularConfig cfg;
  cfg.conditions = 1;
  TabularDenoiser d(s, cfg);
  util::Rng rng(4);
  d.fit({stripes(16, 2)}, 0, rng);
  const squish::Topology x = forward_noise(stripes(16, 2), s, 40, rng);
  ProbGrid grid;
  d.predict_x0(x, 40, 0, grid);
  for (int r = 0; r < 16; r += 5) {
    for (int c = 0; c < 16; c += 3) {
      EXPECT_FLOAT_EQ(d.predict_x0_pixel(x, r, c, 40, 0),
                      grid[static_cast<std::size_t>(r) * 16 + c]);
    }
  }
}

TEST(TabularDenoiserTest, SaveLoadRoundTrip) {
  const NoiseSchedule s{ScheduleConfig{}};
  TabularConfig cfg;
  cfg.conditions = 1;
  TabularDenoiser d(s, cfg);
  util::Rng rng(4);
  d.fit({stripes(16, 2)}, 0, rng);
  std::stringstream ss;
  d.save(ss);
  TabularDenoiser d2(s, cfg);
  d2.load(ss);
  const squish::Topology x = stripes(16, 2);
  ProbGrid a, b;
  d.predict_x0(x, 5, 0, a);
  d2.predict_x0(x, 5, 0, b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(TabularDenoiserTest, LoadIncompatibleThrows) {
  const NoiseSchedule s{ScheduleConfig{}};
  TabularConfig a;
  a.conditions = 1;
  TabularDenoiser d(s, a);
  std::stringstream ss;
  d.save(ss);
  TabularConfig b;
  b.conditions = 2;
  TabularDenoiser d2(s, b);
  EXPECT_THROW(d2.load(ss), std::runtime_error);
}

TEST(MlpDenoiserTest, OutputsAreProbabilities) {
  const NoiseSchedule s{ScheduleConfig{}};
  util::Rng rng(1);
  MlpDenoiser d(s, MlpConfig{2, 16, 1}, rng);
  ProbGrid p0;
  d.predict_x0(stripes(16, 2), 100, 1, p0);
  ASSERT_EQ(p0.size(), 256u);
  for (float p : p0) {
    EXPECT_GT(p, 0.0f);
    EXPECT_LT(p, 1.0f);
  }
}

TEST(MlpDenoiserTest, PixelMatchesGrid) {
  const NoiseSchedule s{ScheduleConfig{}};
  util::Rng rng(2);
  MlpDenoiser d(s, MlpConfig{1, 8, 1}, rng);
  const squish::Topology x = stripes(12, 3);
  ProbGrid grid;
  d.predict_x0(x, 17, 0, grid);
  EXPECT_NEAR(d.predict_x0_pixel(x, 5, 7, 17, 0), grid[5 * 12 + 7], 1e-6);
}

TEST(MlpDenoiserTest, ConditionChangesOutput) {
  const NoiseSchedule s{ScheduleConfig{}};
  util::Rng rng(3);
  MlpDenoiser d(s, MlpConfig{2, 16, 2}, rng);
  ProbGrid a, b;
  const squish::Topology x = stripes(8, 2);
  d.predict_x0(x, 10, 0, a);
  d.predict_x0(x, 10, 1, b);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_diff |= a[i] != b[i];
  EXPECT_TRUE(any_diff);
}

TEST(MlpDenoiserTest, FeatureDimAccountsForConditions) {
  const NoiseSchedule s{ScheduleConfig{}};
  util::Rng rng(4);
  MlpDenoiser d2(s, MlpConfig{2, 8, 1}, rng);
  MlpDenoiser d3(s, MlpConfig{3, 8, 1}, rng);
  EXPECT_EQ(d3.feature_dim(), d2.feature_dim() + 1);
}

}  // namespace
}  // namespace cp::diffusion
