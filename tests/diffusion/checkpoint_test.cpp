// Trainer checkpoint/resume (diffusion/checkpoint.h, docs/ROBUSTNESS.md):
// a run killed between checkpoints resumes from the last snapshot and
// produces weights bit-identical to an uninterrupted run; corrupt or
// mismatched checkpoints fall back to a fresh train instead of crashing.

#include "diffusion/checkpoint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "diffusion/trainer.h"
#include "util/fs.h"

namespace cp::diffusion {
namespace {

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

squish::Topology stripes(int n, int period) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

std::vector<std::vector<squish::Topology>> stripe_classes() {
  std::vector<std::vector<squish::Topology>> per_class(2);
  for (int p = 2; p <= 4; ++p) {
    per_class[0].push_back(stripes(24, p));
    per_class[1].push_back(stripes(24, p).transposed());
  }
  return per_class;
}

TrainConfig base_config() {
  TrainConfig cfg;
  cfg.iterations = 60;
  cfg.batch_pixels = 64;
  cfg.lr = 3e-3f;
  cfg.seed = 5;
  return cfg;
}

MlpDenoiser make_model(const NoiseSchedule& schedule, std::uint64_t init_seed) {
  util::Rng rng(init_seed);
  return MlpDenoiser(schedule, MlpConfig{2, 16, 2}, rng);
}

void expect_same_params(MlpDenoiser& a, MlpDenoiser& b) {
  const auto& pa = a.net().params();
  const auto& pb = b.net().params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_TRUE(pa[i]->value.same_shape(pb[i]->value));
    for (std::size_t j = 0; j < pa[i]->value.numel(); ++j) {
      ASSERT_EQ(pa[i]->value[j], pb[i]->value[j]) << "param " << i << " element " << j;
    }
  }
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  const NoiseSchedule schedule{ScheduleConfig{}};
  MlpDenoiser model = make_model(schedule, 1);
  nn::Adam opt(model.net().params(), 1e-3f);
  util::Rng rng(77);
  (void)rng.next_u64();  // advance so the saved state is mid-stream
  const TrainConfig cfg = base_config();
  const std::string path = temp_path("cp_roundtrip.ckpt");

  save_trainer_checkpoint(path, model, opt, rng, /*next_iter=*/20, cfg);

  MlpDenoiser restored = make_model(schedule, 2);  // different init on purpose
  nn::Adam ropt(restored.net().params(), 1e-3f);
  util::Rng rrng(0);
  int next_iter = -1;
  ASSERT_TRUE(load_trainer_checkpoint(path, restored, ropt, rrng, &next_iter, cfg));
  EXPECT_EQ(next_iter, 20);
  expect_same_params(model, restored);
  // The restored RNG continues the exact stream of the saved one.
  EXPECT_EQ(rng.next_u64(), rrng.next_u64());
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileReturnsFalse) {
  const NoiseSchedule schedule{ScheduleConfig{}};
  MlpDenoiser model = make_model(schedule, 1);
  nn::Adam opt(model.net().params());
  util::Rng rng(1);
  int next_iter = -1;
  EXPECT_FALSE(load_trainer_checkpoint(temp_path("cp_nonexistent.ckpt"), model, opt, rng,
                                       &next_iter, base_config()));
}

TEST(CheckpointTest, FingerprintMismatchReturnsFalse) {
  const NoiseSchedule schedule{ScheduleConfig{}};
  MlpDenoiser model = make_model(schedule, 1);
  nn::Adam opt(model.net().params());
  util::Rng rng(1);
  const TrainConfig cfg = base_config();
  const std::string path = temp_path("cp_fingerprint.ckpt");
  save_trainer_checkpoint(path, model, opt, rng, 10, cfg);

  TrainConfig other = cfg;
  other.seed = cfg.seed + 1;  // a different run — its checkpoint must not apply
  int next_iter = -1;
  EXPECT_FALSE(load_trainer_checkpoint(path, model, opt, rng, &next_iter, other));
  std::remove(path.c_str());
}

TEST(CheckpointTest, CorruptFileThrows) {
  const NoiseSchedule schedule{ScheduleConfig{}};
  MlpDenoiser model = make_model(schedule, 1);
  nn::Adam opt(model.net().params());
  util::Rng rng(1);
  const TrainConfig cfg = base_config();
  const std::string path = temp_path("cp_corrupt.ckpt");
  save_trainer_checkpoint(path, model, opt, rng, 10, cfg);

  std::string raw = util::read_file(path);
  raw[raw.size() / 2] ^= 0x10;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
  }
  int next_iter = -1;
  EXPECT_THROW((void)load_trainer_checkpoint(path, model, opt, rng, &next_iter, cfg),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(CheckpointTest, KilledRunResumesBitIdentically) {
  const NoiseSchedule schedule{ScheduleConfig{}};
  const auto data = stripe_classes();
  const std::string path = temp_path("cp_resume.ckpt");
  std::remove(path.c_str());

  // Reference: one uninterrupted run, no checkpointing involved.
  MlpDenoiser reference = make_model(schedule, 3);
  train_mlp(reference, data, base_config());

  // Checkpointed run: snapshots land at iterations 20 and 40 (never at the
  // final iteration), so after it finishes the iteration-40 snapshot is
  // exactly what a kill between iteration 40 and 60 would leave on disk.
  MlpDenoiser victim = make_model(schedule, 3);
  TrainConfig partial = base_config();
  partial.checkpoint_path = path;
  partial.checkpoint_every = 20;
  train_mlp(victim, data, partial);
  expect_same_params(victim, reference);  // checkpointing must not perturb

  // Resume: a differently-initialized model picks up the iteration-40
  // snapshot left on disk and replays only iterations 40..59. If resume
  // restores params + Adam moments + RNG exactly, the result is
  // bit-identical to the uninterrupted reference despite the alien init.
  MlpDenoiser resumed = make_model(schedule, 999);
  const TrainStats stats = train_mlp(resumed, data, partial);
  EXPECT_TRUE(std::isfinite(stats.final_loss));
  expect_same_params(resumed, reference);
  std::remove(path.c_str());
}

TEST(CheckpointTest, CorruptCheckpointFallsBackToFreshTraining) {
  const NoiseSchedule schedule{ScheduleConfig{}};
  const auto data = stripe_classes();
  const std::string path = temp_path("cp_fallback.ckpt");

  MlpDenoiser reference = make_model(schedule, 4);
  train_mlp(reference, data, base_config());

  // Garbage where a checkpoint should be: train_mlp logs and starts fresh.
  util::atomic_write_file(path, "this is not a checkpoint");
  MlpDenoiser model = make_model(schedule, 4);
  TrainConfig cfg = base_config();
  cfg.checkpoint_path = path;
  train_mlp(model, data, cfg);
  expect_same_params(model, reference);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cp::diffusion
