#include "diffusion/transition.h"

#include <gtest/gtest.h>

namespace cp::diffusion {
namespace {

TEST(TransitionTest, FlipChannel) {
  EXPECT_DOUBLE_EQ(flip_channel_p1(1, 0.1), 0.9);
  EXPECT_DOUBLE_EQ(flip_channel_p1(0, 0.1), 0.1);
  EXPECT_DOUBLE_EQ(flip_channel_p1(1, 0.0), 1.0);
}

TEST(TransitionTest, ForwardNoiseFlipFraction) {
  const NoiseSchedule s{ScheduleConfig{}};
  util::Rng rng(3);
  squish::Topology x0(64, 64);  // all zeros
  const int k = s.step_for_flip(0.25);
  const squish::Topology xk = forward_noise(x0, s, k, rng);
  EXPECT_NEAR(xk.density(), s.cumulative_flip(k), 0.03);
}

TEST(TransitionTest, ForwardNoiseAtZeroIsIdentityDistribution) {
  const NoiseSchedule s{ScheduleConfig{}};
  util::Rng rng(3);
  squish::Topology x0(16, 16, 1);
  EXPECT_EQ(forward_noise(x0, s, 0, rng), x0);
}

TEST(TransitionTest, PosteriorNormalizes) {
  // P(x_j=1|...) + P(x_j=0|...) = 1 holds by construction; check symmetry
  // and edge behaviours instead.
  for (int xk : {0, 1}) {
    for (int x0 : {0, 1}) {
      const double p = posterior_p1(xk, x0, 0.2, 0.1);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(TransitionTest, PosteriorNoNoiseIsDeterministic) {
  // flip_0j = 0: x_j must equal x_0 regardless of x_k.
  EXPECT_DOUBLE_EQ(posterior_p1(0, 1, 0.0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(posterior_p1(1, 0, 0.0, 0.3), 0.0);
}

TEST(TransitionTest, PosteriorPureLikelihood) {
  // flip_0j = 0.5: prior uninformative, posterior follows the likelihood.
  const double p = posterior_p1(1, 0, 0.5, 0.1);
  // P(x_j=1|x_k=1) ∝ 0.9 * 0.5 vs P(x_j=0) ∝ 0.1 * 0.5.
  EXPECT_NEAR(p, 0.9, 1e-12);
}

TEST(TransitionTest, PosteriorBayesAgainstBruteForce) {
  // Brute-force the joint over (x_j, x_k) given x_0 and compare.
  for (int x0 : {0, 1}) {
    for (int xk : {0, 1}) {
      for (double f0j : {0.05, 0.3, 0.45}) {
        for (double fjk : {0.05, 0.2, 0.4}) {
          double num = 0.0, den = 0.0;
          for (int xj : {0, 1}) {
            const double p_xj = xj == 1 ? flip_channel_p1(x0, f0j) : 1 - flip_channel_p1(x0, f0j);
            const double p_xk = xk == 1 ? flip_channel_p1(xj, fjk) : 1 - flip_channel_p1(xj, fjk);
            den += p_xj * p_xk;
            if (xj == 1) num += p_xj * p_xk;
          }
          EXPECT_NEAR(posterior_p1(xk, x0, f0j, fjk), num / den, 1e-12);
        }
      }
    }
  }
}

TEST(TransitionTest, ReverseP1IsMixtureOfPosteriors) {
  const double a = posterior_p1(1, 1, 0.2, 0.1);
  const double b = posterior_p1(1, 0, 0.2, 0.1);
  EXPECT_NEAR(reverse_p1(1, 0.7, 0.2, 0.1), 0.7 * a + 0.3 * b, 1e-12);
  EXPECT_NEAR(reverse_p1(1, 1.0, 0.2, 0.1), a, 1e-12);
  EXPECT_NEAR(reverse_p1(1, 0.0, 0.2, 0.1), b, 1e-12);
}

TEST(TransitionTest, ReverseMonotoneInBelief) {
  // Higher belief in x0=1 must never lower P(x_{k-1}=1).
  double prev = -1.0;
  for (double p0 = 0.0; p0 <= 1.0; p0 += 0.1) {
    const double p = reverse_p1(0, p0, 0.3, 0.2);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

}  // namespace
}  // namespace cp::diffusion
