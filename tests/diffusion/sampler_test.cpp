#include "diffusion/sampler.h"

#include <gtest/gtest.h>

#include "diffusion/tabular_denoiser.h"

namespace cp::diffusion {
namespace {

squish::Topology stripes(int n, int period) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

class SamplerTest : public ::testing::Test {
 protected:
  SamplerTest() : schedule_(ScheduleConfig{}), denoiser_(make_denoiser()) {}

  TabularDenoiser make_denoiser() {
    TabularConfig cfg;
    cfg.conditions = 1;
    cfg.draws_per_bucket = 3;
    TabularDenoiser d(schedule_, cfg);
    util::Rng rng(1);
    std::vector<squish::Topology> data;
    for (int p = 2; p <= 4; ++p) data.push_back(stripes(32, p));
    d.fit(data, 0, rng);
    return d;
  }

  NoiseSchedule schedule_;
  TabularDenoiser denoiser_;
};

TEST_F(SamplerTest, TimestepsDescendToZero) {
  DiffusionSampler s(schedule_, denoiser_);
  for (int count : {4, 8, 16, 64}) {
    const auto steps = s.make_timesteps(count);
    ASSERT_GE(steps.size(), 3u);
    EXPECT_EQ(steps.front(), schedule_.steps());
    EXPECT_EQ(steps.back(), 0);
    EXPECT_EQ(steps[steps.size() - 2], 1);
    for (std::size_t i = 1; i < steps.size(); ++i) EXPECT_LT(steps[i], steps[i - 1]);
  }
}

TEST_F(SamplerTest, TimestepsFullChainWhenZero) {
  DiffusionSampler s(schedule_, denoiser_);
  const auto steps = s.make_timesteps(0);
  EXPECT_EQ(steps.size(), static_cast<std::size_t>(schedule_.steps()) + 1);
  EXPECT_EQ(steps.front(), schedule_.steps());
  EXPECT_EQ(steps.back(), 0);
}

TEST_F(SamplerTest, TimestepsAreNoiseUniform) {
  // Consecutive visited steps should cover roughly equal cumulative-flip
  // increments (the annealing property).
  DiffusionSampler s(schedule_, denoiser_);
  const auto steps = s.make_timesteps(16);
  const double top = schedule_.cumulative_flip(schedule_.steps());
  for (std::size_t i = 0; i + 2 < steps.size(); ++i) {
    const double drop =
        schedule_.cumulative_flip(steps[i]) - schedule_.cumulative_flip(steps[i + 1]);
    EXPECT_LT(drop, 2.5 * top / 16) << "jump " << steps[i] << "->" << steps[i + 1];
  }
}

TEST_F(SamplerTest, TimestepsFromIntermediateLevel) {
  DiffusionSampler s(schedule_, denoiser_);
  const auto steps = s.make_timesteps_from(40, 6);
  EXPECT_EQ(steps.front(), 40);
  EXPECT_EQ(steps.back(), 0);
}

TEST_F(SamplerTest, SampleDimsAndDeterminism) {
  DiffusionSampler s(schedule_, denoiser_);
  SampleConfig cfg;
  cfg.rows = 24;
  cfg.cols = 16;
  cfg.sample_steps = 8;
  cfg.polish_rounds = 1;
  util::Rng a(5), b(5);
  const squish::Topology t1 = s.sample(cfg, a);
  const squish::Topology t2 = s.sample(cfg, b);
  EXPECT_EQ(t1.rows(), 24);
  EXPECT_EQ(t1.cols(), 16);
  EXPECT_EQ(t1, t2) << "same seed must reproduce the sample";
  util::Rng c(6);
  EXPECT_NE(s.sample(cfg, c), t1);
}

TEST_F(SamplerTest, SampleApproximatesDataDensity) {
  DiffusionSampler s(schedule_, denoiser_);
  SampleConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  cfg.sample_steps = 16;
  util::Rng rng(7);
  double dens = 0;
  const int n = 6;
  for (int i = 0; i < n; ++i) dens += s.sample(cfg, rng).density();
  EXPECT_NEAR(dens / n, 0.5, 0.12) << "stripe data is half filled";
}

TEST_F(SamplerTest, ReverseStepValidation) {
  DiffusionSampler s(schedule_, denoiser_);
  util::Rng rng(1);
  squish::Topology x(8, 8);
  EXPECT_THROW(s.reverse_step(x, 5, 5, 0, rng), std::invalid_argument);
  EXPECT_THROW(s.reverse_step(x, 5, 9, 0, rng), std::invalid_argument);
}

TEST_F(SamplerTest, SampleFromRequiresDescendingToZero) {
  DiffusionSampler s(schedule_, denoiser_);
  util::Rng rng(1);
  squish::Topology x(8, 8);
  EXPECT_THROW(s.sample_from(x, {10, 5}, 0, rng), std::invalid_argument);
  EXPECT_THROW(s.sample_from(x, {0}, 0, rng), std::invalid_argument);
}

TEST_F(SamplerTest, FactorizedModeAlsoWorks) {
  DiffusionSampler s(schedule_, denoiser_, /*sequential=*/false);
  EXPECT_FALSE(s.sequential());
  SampleConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.sample_steps = 8;
  util::Rng rng(2);
  const squish::Topology t = s.sample(cfg, rng);
  EXPECT_EQ(t.rows(), 16);
}

TEST_F(SamplerTest, GuidanceKeepsDensityOnTarget) {
  // With guidance off, the weak local model drifts away from the data
  // density; with guidance on it must stay close.
  SampleConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  cfg.sample_steps = 12;
  cfg.polish_rounds = 0;
  DiffusionSampler guided(schedule_, denoiser_);
  util::Rng rng(9);
  double d_guided = 0;
  for (int i = 0; i < 4; ++i) d_guided += guided.sample(cfg, rng).density();
  EXPECT_NEAR(d_guided / 4, 0.5, 0.1);
}

TEST_F(SamplerTest, MapPolishIsDeterministicAndStable) {
  DiffusionSampler s(schedule_, denoiser_);
  const squish::Topology clean = stripes(32, 3);
  const squish::Topology a = s.map_polish(clean, 16, 0);
  const squish::Topology b = s.map_polish(clean, 16, 0);
  EXPECT_EQ(a, b);
  // A clean data pattern should survive polish nearly unchanged.
  int diff = 0;
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 32; ++c) diff += a.at(r, c) != clean.at(r, c);
  }
  EXPECT_LT(diff, 64);
}

TEST_F(SamplerTest, MapPolishRespectsKeepMask) {
  DiffusionSampler s(schedule_, denoiser_);
  squish::Topology x(16, 16, 1);
  squish::Topology keep(16, 16, 1);
  const squish::Topology out = s.map_polish(x, 16, 0, keep);
  EXPECT_EQ(out, x);
}

TEST_F(SamplerTest, PolishRemovesSpeckle) {
  DiffusionSampler s(schedule_, denoiser_);
  squish::Topology noisy = stripes(32, 3);
  // Inject isolated flips.
  noisy.set(5, 5, noisy.at(5, 5) ? 0 : 1);
  noisy.set(20, 11, noisy.at(20, 11) ? 0 : 1);
  const squish::Topology polished = s.map_polish(noisy, 16, 0);
  int diff_to_clean = 0;
  const squish::Topology clean = stripes(32, 3);
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 32; ++c) diff_to_clean += polished.at(r, c) != clean.at(r, c);
  }
  EXPECT_LE(diff_to_clean, 1024 / 5) << "polish should not explode differences";
}

}  // namespace
}  // namespace cp::diffusion
