// Quality gate for int8 quantized inference (DESIGN.md "Quantized
// inference"): sampling through the quantized kernels is allowed to change
// bits — it is NOT allowed to change the statistics the paper reports. For a
// fixed seed set we draw a library with the fp32 tier and one with the int8
// tier from the same trained MLP denoiser, then hold the same summary-metric
// deltas the few-step harness enforces (fast_quality_test.cpp): mean
// density, mean scan-line complexity (c_x + c_y) and library diversity
// (Definition 2), plus absolute density sanity so a collapsed pair of
// libraries cannot sneak through on deltas alone.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "diffusion/mlp_denoiser.h"
#include "diffusion/precision.h"
#include "diffusion/sampler.h"
#include "diffusion/trainer.h"
#include "metrics/metrics.h"

namespace cp::diffusion {
namespace {

constexpr int kPatterns = 6;    // library size per tier
constexpr int kFastSteps = 50;  // same visited-step budget as fast_quality
// Thresholds shared with fast_quality_test.cpp: ~2x the sampler's own
// seed-to-seed noise on this fixture.
constexpr double kDensityTol = 0.12;
constexpr double kComplexityTol = 10.0;
constexpr double kDiversityTol = 1.6;

squish::Topology stripes(int n, int period) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

struct LibraryStats {
  double density = 0.0;
  double complexity = 0.0;
  double diversity = 0.0;
};

LibraryStats stats_of(const std::vector<squish::Topology>& lib) {
  LibraryStats s;
  for (const auto& t : lib) {
    const auto [cx, cy] = t.complexity();
    s.density += t.density();
    s.complexity += cx + cy;
  }
  s.density /= static_cast<double>(lib.size());
  s.complexity /= static_cast<double>(lib.size());
  s.diversity = metrics::diversity(lib);
  return s;
}

class QuantQualityTest : public ::testing::Test {
 protected:
  QuantQualityTest() : schedule_(ScheduleConfig{}), denoiser_(make_trained(schedule_)) {}

  static MlpDenoiser make_trained(const NoiseSchedule& schedule) {
    util::Rng rng(5);
    MlpDenoiser model(schedule, MlpConfig{1, 32, 2}, rng);
    std::vector<std::vector<squish::Topology>> per_class(1);
    for (int p = 2; p <= 4; ++p) per_class[0].push_back(stripes(32, p));
    TrainConfig cfg;
    cfg.iterations = 800;
    cfg.seed = 7;
    train_mlp(model, per_class, cfg);
    return model;
  }

  std::vector<squish::Topology> draw_library(const DiffusionSampler& sampler,
                                             Precision precision) const {
    SampleConfig cfg;
    cfg.rows = 32;
    cfg.cols = 32;
    cfg.sample_steps = kFastSteps;
    cfg.polish_rounds = 1;
    cfg.precision = precision;
    std::vector<squish::Topology> lib;
    for (int i = 0; i < kPatterns; ++i) {
      util::Rng rng(100 + static_cast<std::uint64_t>(i));  // fixed seed set
      lib.push_back(sampler.sample(cfg, rng));
    }
    return lib;
  }

  NoiseSchedule schedule_;
  MlpDenoiser denoiser_;
};

TEST_F(QuantQualityTest, Int8SamplingMatchesFp32Statistics) {
  const DiffusionSampler sampler(schedule_, denoiser_);
  const LibraryStats fp32 = stats_of(draw_library(sampler, Precision::kFp32));
  const LibraryStats int8 = stats_of(draw_library(sampler, Precision::kInt8));

  std::ostringstream table;
  table << "\n  tier    density  complexity  diversity\n";
  table << "  fp32    " << fp32.density << "  " << fp32.complexity << "  " << fp32.diversity
        << "\n";
  table << "  int8    " << int8.density << "  " << int8.complexity << "  " << int8.diversity
        << "\n";

  EXPECT_LE(std::abs(int8.density - fp32.density), kDensityTol) << "density" << table.str();
  EXPECT_LE(std::abs(int8.complexity - fp32.complexity), kComplexityTol)
      << "complexity" << table.str();
  EXPECT_LE(std::abs(int8.diversity - fp32.diversity), kDiversityTol)
      << "diversity" << table.str();
  for (const LibraryStats* s : {&fp32, &int8}) {
    EXPECT_GT(s->density, 0.2) << table.str();
    EXPECT_LT(s->density, 0.8) << table.str();
  }
}

TEST_F(QuantQualityTest, Int8SamplingIsDeterministic) {
  // Bit-determinism within the tier: the int8 kernels are exact integer
  // arithmetic plus identically-rounded epilogues, so the same seed must
  // reproduce the same topology, run to run.
  const DiffusionSampler sampler(schedule_, denoiser_);
  SampleConfig cfg;
  cfg.rows = 32;
  cfg.cols = 32;
  cfg.sample_steps = kFastSteps;
  cfg.polish_rounds = 1;
  cfg.precision = Precision::kInt8;
  util::Rng a(42), b(42);
  EXPECT_TRUE(sampler.sample(cfg, a) == sampler.sample(cfg, b));
}

TEST_F(QuantQualityTest, ConfigFlagAndPrecisionScopeAgree) {
  // The two opt-in routes — MlpConfig::quantized on the model and a
  // request-scoped PrecisionScope — must select the same kernels and
  // produce identical predictions.
  util::Rng rng_a(9), rng_b(9);
  const NoiseSchedule schedule{ScheduleConfig{}};
  const MlpDenoiser via_scope(schedule, MlpConfig{1, 16, 1}, rng_a);
  const MlpDenoiser via_config(schedule, MlpConfig{1, 16, 1, true}, rng_b);

  const squish::Topology xk = stripes(24, 3);
  ProbGrid p_scope, p_config;
  {
    const PrecisionScope scope(Precision::kInt8);
    via_scope.predict_x0(xk, 40, 0, p_scope);
  }
  via_config.predict_x0(xk, 40, 0, p_config);
  ASSERT_EQ(p_scope.size(), p_config.size());
  for (std::size_t i = 0; i < p_scope.size(); ++i) {
    ASSERT_EQ(p_scope[i], p_config[i]) << "at " << i;
  }
  // And the scoped int8 prediction really is the quantized one, not fp32.
  ProbGrid p_fp32;
  via_scope.predict_x0(xk, 40, 0, p_fp32);
  bool differs = false;
  for (std::size_t i = 0; i < p_fp32.size(); ++i) differs = differs || p_fp32[i] != p_scope[i];
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace cp::diffusion
