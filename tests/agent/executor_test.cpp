#include "agent/executor.h"

#include <gtest/gtest.h>

#include "tests/agent/agent_fixture.h"

namespace cp::agent {
namespace {

using testing::AgentFixture;

class ExecutorTest : public AgentFixture {
 protected:
  RequirementList easy_requirement(long long count) {
    RequirementList req;
    req.topo_rows = kWindow;
    req.topo_cols = kWindow;
    req.phys_w_nm = kBudgetNm;
    req.phys_h_nm = kBudgetNm;
    req.style = "Layer-10001";
    req.count = count;
    req.sample_steps = 8;
    req.seed = 11;
    return req;
  }
};

TEST_F(ExecutorTest, ProducesRequestedPatterns) {
  ScriptedBrain brain;
  ExperienceStore exp;
  Executor executor(&tools_, &brain, &store_, &exp, kWindow);
  const ExecutionResult res = executor.run(easy_requirement(3));
  EXPECT_EQ(res.stats.requested, 3);
  EXPECT_EQ(res.stats.produced, 3);
  EXPECT_EQ(res.pattern_ids.size(), 3u);
  for (const auto& id : res.pattern_ids) EXPECT_TRUE(store_.has_pattern(id));
  EXPECT_GT(res.stats.tool_calls, 0);
}

TEST_F(ExecutorTest, TranscriptHasReActShape) {
  ScriptedBrain brain;
  Executor executor(&tools_, &brain, &store_, nullptr, kWindow);
  const ExecutionResult res = executor.run(easy_requirement(1));
  bool thought = false, action = false, input = false, observation = false;
  for (const auto& line : res.transcript) {
    thought |= line.rfind("Thought: ", 0) == 0;
    action |= line.rfind("Action: ", 0) == 0;
    input |= line.rfind("Action Input: ", 0) == 0;
    observation |= line.rfind("Observation: ", 0) == 0;
  }
  EXPECT_TRUE(thought && action && input && observation);
}

TEST_F(ExecutorTest, ActionNamesRenderedInPaperStyle) {
  ScriptedBrain brain;
  Executor executor(&tools_, &brain, &store_, nullptr, kWindow);
  const ExecutionResult res = executor.run(easy_requirement(1));
  bool pretty = false;
  for (const auto& line : res.transcript) {
    pretty |= line.find("Topology_Generation") != std::string::npos;
  }
  EXPECT_TRUE(pretty);
}

TEST_F(ExecutorTest, ImpossibleBudgetDropsWhenAllowed) {
  ScriptedBrain brain;
  RequirementList req = easy_requirement(2);
  req.phys_w_nm = 20;  // below the pitch floor: no topology can fit
  req.phys_h_nm = 20;
  Executor executor(&tools_, &brain, &store_, nullptr, kWindow);
  const ExecutionResult res = executor.run(req);
  EXPECT_EQ(res.stats.produced, 0);
  EXPECT_EQ(res.stats.dropped, 2);
  EXPECT_GT(res.stats.legalization_failures, 0);
  EXPECT_GT(res.stats.modifications + res.stats.regenerations, 0)
      << "recovery must be attempted before dropping";
}

TEST_F(ExecutorTest, ImpossibleBudgetGivesUpWhenDropsForbidden) {
  ScriptedBrain brain;
  RequirementList req = easy_requirement(1);
  req.phys_w_nm = 20;
  req.phys_h_nm = 20;
  req.drop_allowed = false;
  Executor executor(&tools_, &brain, &store_, nullptr, kWindow);
  const ExecutionResult res = executor.run(req);
  EXPECT_EQ(res.stats.produced, 0);
  EXPECT_EQ(res.stats.dropped, 0);
  EXPECT_EQ(res.stats.gave_up, 1);
}

TEST_F(ExecutorTest, RecoveryViaModificationIsVisibleInTranscript) {
  ScriptedBrain brain(ScriptedBrain::Policy{0, 2, true});  // no regenerations
  RequirementList req = easy_requirement(1);
  req.phys_w_nm = 20;
  req.phys_h_nm = 20;
  Executor executor(&tools_, &brain, &store_, nullptr, kWindow);
  const ExecutionResult res = executor.run(req);
  bool modification_logged = false;
  for (const auto& line : res.transcript) {
    modification_logged |= line.find("Topology_Modification") != std::string::npos;
  }
  EXPECT_TRUE(modification_logged);
  EXPECT_GT(res.stats.modifications, 0);
}

TEST_F(ExecutorTest, ExtensionTaskRecordsExperience) {
  ScriptedBrain brain;
  ExperienceStore exp;
  RequirementList req = easy_requirement(1);
  req.topo_rows = kWindow * 2;
  req.topo_cols = kWindow * 2;
  req.phys_w_nm = kBudgetNm * 2;
  req.phys_h_nm = kBudgetNm * 2;
  Executor executor(&tools_, &brain, &store_, &exp, kWindow);
  const ExecutionResult res = executor.run(req);
  EXPECT_EQ(res.stats.produced, 1);
  const ExperienceEntry& e = exp.entry("Out", req.style, kWindow * 2);
  EXPECT_EQ(e.attempts, 1);
  EXPECT_EQ(e.successes, 1);
}

TEST_F(ExecutorTest, TimeLimitStopsEarly) {
  ScriptedBrain brain;
  RequirementList req = easy_requirement(1000000);
  req.time_limit_s = 0.05;
  Executor executor(&tools_, &brain, &store_, nullptr, kWindow);
  const ExecutionResult res = executor.run(req);
  EXPECT_TRUE(res.stats.time_limit_hit);
  EXPECT_LT(res.stats.produced, 1000000);
}

TEST_F(ExecutorTest, StepBudgetGuardsAgainstLoops) {
  ScriptedBrain brain(ScriptedBrain::Policy{100, 100, true});  // never give up
  RequirementList req = easy_requirement(1);
  req.phys_w_nm = 20;
  req.phys_h_nm = 20;
  req.drop_allowed = false;
  Executor executor(&tools_, &brain, &store_, nullptr, kWindow);
  executor.set_max_steps_per_item(6);
  const ExecutionResult res = executor.run(req);
  EXPECT_EQ(res.stats.produced, 0);
  EXPECT_EQ(res.stats.gave_up, 1);
}

TEST_F(ExecutorTest, DroppedTopologiesAreReclaimed) {
  ScriptedBrain brain;
  RequirementList req = easy_requirement(2);
  req.phys_w_nm = 20;
  req.phys_h_nm = 20;
  Executor executor(&tools_, &brain, &store_, nullptr, kWindow);
  const std::size_t before = store_.topology_count();
  executor.run(req);
  // Dropped items must not leak topologies (modified intermediates are
  // erased as they are superseded; the final drop erases the last one).
  EXPECT_LE(store_.topology_count(), before + 2);
}

}  // namespace
}  // namespace cp::agent
