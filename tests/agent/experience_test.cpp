#include "agent/experience.h"

#include <gtest/gtest.h>

#include "agent/planner.h"

namespace cp::agent {
namespace {

TEST(DocumentStoreTest, DefaultsContainPipelineKnowledge) {
  const DocumentStore docs = make_default_documents();
  EXPECT_TRUE(docs.has("pipeline"));
  EXPECT_TRUE(docs.has("extension_notes"));
  EXPECT_TRUE(docs.has("design_rules"));
  EXPECT_NE(docs.get("extension_notes").find("out-painting"), std::string::npos);
  EXPECT_THROW(docs.get("nonexistent"), std::out_of_range);
  EXPECT_EQ(docs.names().size(), 3u);
}

TEST(ExperienceTest, RecordsAndAggregates) {
  ExperienceStore store;
  store.record("Out", "Layer-10001", 256, true);
  store.record("Out", "Layer-10001", 256, true);
  store.record("Out", "Layer-10001", 256, false);
  const ExperienceEntry& e = store.entry("Out", "Layer-10001", 256);
  EXPECT_EQ(e.attempts, 3);
  EXPECT_EQ(e.successes, 2);
  EXPECT_NEAR(e.success_rate(), 2.0 / 3.0, 1e-12);
}

TEST(ExperienceTest, BucketsByPowerOfTwo) {
  EXPECT_EQ(ExperienceStore::bucket_of(128), 128);
  EXPECT_EQ(ExperienceStore::bucket_of(129), 256);
  EXPECT_EQ(ExperienceStore::bucket_of(256), 256);
  EXPECT_EQ(ExperienceStore::bucket_of(1000), 1024);
  // Entries at 250 and 256 share a bucket.
  ExperienceStore store;
  store.record("Out", "S", 250, true);
  EXPECT_EQ(store.entry("Out", "S", 256).attempts, 1);
}

TEST(ExperienceTest, DefaultMethodIsOutWithoutEvidence) {
  const ExperienceStore store;
  EXPECT_EQ(store.best_method("Layer-10001", 512), "Out");
}

TEST(ExperienceTest, SwitchesToInOnStrongEvidence) {
  ExperienceStore store;
  for (int i = 0; i < 10; ++i) {
    store.record("In", "Layer-10001", 512, true);
    store.record("Out", "Layer-10001", 512, false);
  }
  EXPECT_EQ(store.best_method("Layer-10001", 512), "In");
  // Other styles/sizes unaffected.
  EXPECT_EQ(store.best_method("Layer-10003", 512), "Out");
  EXPECT_EQ(store.best_method("Layer-10001", 128), "Out");
}

TEST(ExperienceTest, SmoothedRateHasPrior) {
  const ExperienceStore store;
  EXPECT_NEAR(store.success_rate("Out", "S", 128), 0.5, 1e-12);
}

TEST(ExperienceTest, DiversityTracking) {
  ExperienceStore store;
  store.record_diversity("In", "S", 256, 10.0);
  store.record_diversity("In", "S", 256, 12.0);
  EXPECT_NEAR(store.entry("In", "S", 256).mean_diversity(), 11.0, 1e-12);
}

TEST(ExperienceTest, JsonRoundTrip) {
  ExperienceStore store;
  store.record("Out", "Layer-10001", 256, true);
  store.record("In", "Layer-10003", 512, false);
  store.record_diversity("In", "Layer-10003", 512, 9.5);
  const ExperienceStore back = ExperienceStore::from_json(store.to_json());
  EXPECT_EQ(back.size(), store.size());
  EXPECT_EQ(back.entry("Out", "Layer-10001", 256).successes, 1);
  EXPECT_NEAR(back.entry("In", "Layer-10003", 512).mean_diversity(), 9.5, 1e-12);
}

TEST(PlannerTest, DirectPlanForWindowSizedTargets) {
  RequirementList req;
  req.count = 10;
  const TaskPlan plan = plan_tasks(req, 128, 64, nullptr);
  ASSERT_GE(plan.steps.size(), 3u);
  EXPECT_EQ(plan.samples_per_pattern, 1);
  EXPECT_NE(plan.steps[0].find("diffusion"), std::string::npos);
  EXPECT_NE(plan.to_text().find("1. "), std::string::npos);
}

TEST(PlannerTest, ExtensionPlanUsesFormulas) {
  RequirementList req;
  req.topo_rows = 512;
  req.topo_cols = 512;
  const TaskPlan plan = plan_tasks(req, 128, 64, nullptr);
  EXPECT_EQ(plan.method, "Out");
  EXPECT_EQ(plan.samples_per_pattern, 49);  // (ceil(384/64)+1)^2
}

TEST(PlannerTest, ExtensionPlanConsultsExperience) {
  ExperienceStore exp;
  for (int i = 0; i < 10; ++i) {
    exp.record("In", "Layer-10001", 256, true);
    exp.record("Out", "Layer-10001", 256, false);
  }
  RequirementList req;
  req.topo_rows = 256;
  req.topo_cols = 256;
  const TaskPlan plan = plan_tasks(req, 128, 64, &exp);
  EXPECT_EQ(plan.method, "In");
  EXPECT_EQ(plan.samples_per_pattern, 9);  // (2*2-1)^2
}

TEST(PlannerTest, PlanMentionsDropPolicy) {
  RequirementList req;
  req.drop_allowed = false;
  const TaskPlan plan = plan_tasks(req, 128, 64, nullptr);
  EXPECT_NE(plan.to_text().find("drops forbidden"), std::string::npos);
}

}  // namespace
}  // namespace cp::agent
