// The library_retrieval tool: registered only when a persistent
// pattlib::PatternStore is attached to the backend, pulls stored patterns
// into the session store by metadata query, and keeps the matrices
// server-side (the agent sees ids and summaries only).

#include <gtest/gtest.h>

#include "agent_fixture.h"
#include "pattlib/pattern_store.h"
#include "squish/squish.h"

namespace cp::agent::testing {
namespace {

class LibraryToolTest : public AgentFixture {
 protected:
  /// A well-formed squish pattern whose canonical topology is distinct per
  /// stripe period (different run counts survive deduplication).
  squish::SquishPattern make_pattern(int period) const {
    squish::SquishPattern p;
    p.topology = stripes(kWindow, period);
    p.dx = squish::uniform_deltas(kWindow, kBudgetNm);
    p.dy = squish::uniform_deltas(kWindow, kBudgetNm);
    return p;
  }

  void fill_library(pattlib::PatternStore& lib) const {
    pattlib::PatternMeta meta;
    meta.style_tag = "stripes";
    meta.layer = 1;
    lib.add(make_pattern(4), meta);
    meta.layer = 2;
    lib.add(make_pattern(8), meta);
    meta.style_tag = "checker";
    meta.layer = 1;
    lib.add(make_pattern(16), meta);
  }

  ToolRegistry make_tools(const pattlib::PatternStore* library) {
    GeneratorBackend backend;
    backend.sampler = &sampler_;
    backend.legalizers = {&legal0_, &legal1_};
    backend.store = &store_;
    backend.window = kWindow;
    backend.default_stride = kWindow / 2;
    backend.library = library;
    return make_standard_tools(backend);
  }
};

TEST_F(LibraryToolTest, NotRegisteredWithoutLibrary) {
  // The fixture's default registry has no library attached.
  EXPECT_FALSE(tools_.has("library_retrieval"));
  const ToolResult r = tools_.call("library_retrieval", util::Json());
  EXPECT_FALSE(r.ok);
}

TEST_F(LibraryToolTest, RetrievalRegistersPatternsInSessionStore) {
  pattlib::PatternStore lib;
  fill_library(lib);
  const ToolRegistry tools = make_tools(&lib);
  ASSERT_TRUE(tools.has("library_retrieval"));

  util::Json args;
  args["style_tag"] = "stripes";
  args["count"] = 8;
  const ToolResult r = tools.call("library_retrieval", args);
  ASSERT_TRUE(r.ok) << r.payload.dump();
  EXPECT_EQ(r.payload.at("matched").as_int(), 2);
  EXPECT_EQ(r.payload.at("library_size").as_int(), 3);
  const util::JsonArray& found = r.payload.at("patterns").as_array();
  ASSERT_EQ(found.size(), 2u);
  for (const util::Json& item : found) {
    // The matrix never crosses the tool boundary: the agent gets an id into
    // the session store plus summary characteristics.
    const std::string id = item.at("pattern_id").as_string();
    EXPECT_TRUE(store_.has_pattern(id));
    EXPECT_TRUE(store_.pattern(id).well_formed());
    EXPECT_EQ(item.at("style_tag").as_string(), "stripes");
    EXPECT_EQ(item.at("drc").as_string(), "unknown");
    EXPECT_GT(item.at("rows").as_int(), 0);
  }
}

TEST_F(LibraryToolTest, WildcardLayerAndDensityFilters) {
  pattlib::PatternStore lib;
  fill_library(lib);
  const ToolRegistry tools = make_tools(&lib);

  util::Json any;
  any["style_tag"] = "*";
  any["count"] = 8;
  EXPECT_EQ(tools.call("library_retrieval", any).payload.at("matched").as_int(), 3);

  util::Json layered = any;
  layered["layer"] = 2;
  EXPECT_EQ(tools.call("library_retrieval", layered).payload.at("matched").as_int(), 1);

  // The stripe fixtures are half-dense; an impossible density band is empty.
  util::Json dense = any;
  dense["min_density"] = 0.95;
  const ToolResult r = tools.call("library_retrieval", dense);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.payload.at("matched").as_int(), 0);
  EXPECT_TRUE(r.payload.at("patterns").as_array().empty());

  // count caps the result set.
  util::Json capped = any;
  capped["count"] = 1;
  EXPECT_EQ(tools.call("library_retrieval", capped).payload.at("patterns").as_array().size(), 1u);
}

}  // namespace
}  // namespace cp::agent::testing
