#include "agent/tools.h"

#include <gtest/gtest.h>

#include "tests/agent/agent_fixture.h"

namespace cp::agent {
namespace {

using testing::AgentFixture;

class ToolsTest : public AgentFixture {};

TEST_F(ToolsTest, RegistryListsStandardTools) {
  for (const char* name : {"topology_generation", "topology_legalization", "topology_extension",
                           "topology_modification", "topology_analysis"}) {
    EXPECT_TRUE(tools_.has(name)) << name;
    EXPECT_FALSE(tools_.spec(name).documentation.empty());
  }
}

TEST_F(ToolsTest, UnknownToolYieldsErrorResult) {
  const ToolResult r = tools_.call("warp_drive", util::Json());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.payload.get_string("error", "").find("unknown tool"), std::string::npos);
}

TEST_F(ToolsTest, GenerationReturnsIdAndStats) {
  util::Json args;
  args["style"] = "Layer-10001";
  args["rows"] = kWindow;
  args["cols"] = kWindow;
  args["seed"] = 7;
  args["steps"] = 8;
  const ToolResult r = tools_.call("topology_generation", args);
  ASSERT_TRUE(r.ok) << r.payload.dump();
  const std::string id = r.payload.get_string("topology_id", "");
  EXPECT_TRUE(store_.has_topology(id));
  EXPECT_EQ(r.payload.get_int("rows", 0), kWindow);
  EXPECT_GT(r.payload.get_number("density", 0.0), 0.1);
  EXPECT_GT(r.payload.get_int("complexity_x", 0), 0);
}

TEST_F(ToolsTest, GenerationRejectsOversize) {
  util::Json args;
  args["style"] = "Layer-10001";
  args["rows"] = kWindow * 2;
  const ToolResult r = tools_.call("topology_generation", args);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.payload.get_string("error", "").find("topology_extension"), std::string::npos);
}

TEST_F(ToolsTest, GenerationUnknownStyleFails) {
  util::Json args;
  args["style"] = "Layer-777";
  const ToolResult r = tools_.call("topology_generation", args);
  EXPECT_FALSE(r.ok);
}

TEST_F(ToolsTest, LegalizationSuccessStoresPattern) {
  util::Json gen;
  gen["style"] = "Layer-10001";
  gen["seed"] = 3;
  gen["steps"] = 8;
  const ToolResult g = tools_.call("topology_generation", gen);
  ASSERT_TRUE(g.ok);
  util::Json args;
  args["topology_id"] = g.payload.get_string("topology_id", "");
  args["width_nm"] = kBudgetNm;
  args["height_nm"] = kBudgetNm;
  args["style"] = "Layer-10001";
  const ToolResult r = tools_.call("topology_legalization", args);
  ASSERT_TRUE(r.ok) << r.payload.dump();
  EXPECT_TRUE(store_.has_pattern(r.payload.get_string("pattern_id", "")));
}

TEST_F(ToolsTest, LegalizationFailureReportsRegionAndLog) {
  util::Json gen;
  gen["style"] = "Layer-10001";
  gen["seed"] = 3;
  gen["steps"] = 8;
  const ToolResult g = tools_.call("topology_generation", gen);
  util::Json args;
  args["topology_id"] = g.payload.get_string("topology_id", "");
  args["width_nm"] = 20;  // below the 32-interval pitch floor: always fails
  args["height_nm"] = 20;
  args["style"] = "Layer-10001";
  const ToolResult r = tools_.call("topology_legalization", args);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.payload.get_string("error", ""), "legalization_failed");
  EXPECT_FALSE(r.payload.get_string("log", "").empty());
  ASSERT_TRUE(r.payload.contains("region"));
  const util::Json& region = r.payload.at("region");
  EXPECT_GE(region.get_int("bottom", -1), region.get_int("upper", 0));
}

TEST_F(ToolsTest, ExtensionGrowsTopology) {
  util::Json args;
  args["style"] = "Layer-10001";
  args["target_rows"] = 64;
  args["target_cols"] = 64;
  args["method"] = "Out";
  args["steps"] = 8;
  args["seed"] = 5;
  const ToolResult r = tools_.call("topology_extension", args);
  ASSERT_TRUE(r.ok) << r.payload.dump();
  EXPECT_EQ(r.payload.get_int("rows", 0), 64);
  EXPECT_GT(r.payload.get_int("model_calls", 0), 1);
  EXPECT_EQ(r.payload.get_string("method", ""), "Out-Painting");
}

TEST_F(ToolsTest, ExtensionFromExistingSeed) {
  util::Json gen;
  gen["style"] = "Layer-10001";
  gen["seed"] = 4;
  gen["steps"] = 8;
  const ToolResult g = tools_.call("topology_generation", gen);
  util::Json args;
  args["style"] = "Layer-10001";
  args["topology_id"] = g.payload.get_string("topology_id", "");
  args["target_rows"] = 64;
  args["target_cols"] = 64;
  args["method"] = "In";
  args["steps"] = 8;
  const ToolResult r = tools_.call("topology_extension", args);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.payload.get_string("method", ""), "In-Painting");
}

TEST_F(ToolsTest, ModificationRegeneratesRegion) {
  util::Json gen;
  gen["style"] = "Layer-10001";
  gen["seed"] = 6;
  gen["steps"] = 8;
  const ToolResult g = tools_.call("topology_generation", gen);
  const std::string id = g.payload.get_string("topology_id", "");
  const squish::Topology before = store_.topology(id);

  util::Json args;
  args["topology_id"] = id;
  args["upper"] = 8;
  args["left"] = 8;
  args["bottom"] = 24;
  args["right"] = 24;
  args["style"] = "Layer-10001";
  args["seed"] = 42;
  args["steps"] = 8;
  const ToolResult r = tools_.call("topology_modification", args);
  ASSERT_TRUE(r.ok) << r.payload.dump();
  const squish::Topology after = store_.topology(r.payload.get_string("topology_id", ""));
  // Outside the region nothing changed.
  for (int row = 0; row < kWindow; ++row) {
    for (int col = 0; col < kWindow; ++col) {
      if (row >= 8 && row < 24 && col >= 8 && col < 24) continue;
      ASSERT_EQ(after.at(row, col), before.at(row, col));
    }
  }
}

TEST_F(ToolsTest, ModificationRejectsBadRegion) {
  util::Json gen;
  gen["style"] = "Layer-10001";
  gen["seed"] = 6;
  gen["steps"] = 8;
  const ToolResult g = tools_.call("topology_generation", gen);
  util::Json args;
  args["topology_id"] = g.payload.get_string("topology_id", "");
  args["upper"] = 20;
  args["bottom"] = 10;  // inverted
  args["style"] = "Layer-10001";
  const ToolResult r = tools_.call("topology_modification", args);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.payload.get_string("error", "").find("bad region"), std::string::npos);
}

TEST_F(ToolsTest, AnalysisReportsWithoutExposingMatrix) {
  util::Json gen;
  gen["style"] = "Layer-10003";
  gen["seed"] = 2;
  gen["steps"] = 8;
  const ToolResult g = tools_.call("topology_generation", gen);
  util::Json args;
  args["topology_id"] = g.payload.get_string("topology_id", "");
  const ToolResult r = tools_.call("topology_analysis", args);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.payload.get_int("rows", 0), kWindow);
  // The payload must not contain any raw matrix dump.
  EXPECT_EQ(r.payload.dump().find("[[", 0), std::string::npos);
}

TEST_F(ToolsTest, MissingTopologyIdSurfacesAsToolError) {
  util::Json args;
  args["topology_id"] = "topo-9999";
  const ToolResult r = tools_.call("topology_analysis", args);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.payload.get_string("error", "").find("topo-9999"), std::string::npos);
}

TEST_F(ToolsTest, DeterministicForSameSeed) {
  util::Json args;
  args["style"] = "Layer-10001";
  args["seed"] = 99;
  args["steps"] = 8;
  const ToolResult a = tools_.call("topology_generation", args);
  const ToolResult b = tools_.call("topology_generation", args);
  const auto& ta = store_.topology(a.payload.get_string("topology_id", ""));
  const auto& tb = store_.topology(b.payload.get_string("topology_id", ""));
  EXPECT_EQ(ta, tb);
}

TEST_F(ToolsTest, PatternStoreBasics) {
  PatternStore s;
  const std::string id = s.put_topology(squish::Topology(4, 4));
  EXPECT_TRUE(s.has_topology(id));
  EXPECT_EQ(s.topology_count(), 1u);
  s.erase_topology(id);
  EXPECT_FALSE(s.has_topology(id));
  EXPECT_THROW(s.topology(id), std::out_of_range);
}

}  // namespace
}  // namespace cp::agent
