#pragma once
// Shared fixture for agent-layer tests: a small trained generator (32-cell
// window, stripe data for condition 0, transposed stripes for condition 1),
// relaxed design rules, and the standard tool registry over them.

#include <gtest/gtest.h>

#include "agent/tools.h"
#include "diffusion/cascade.h"
#include "diffusion/tabular_denoiser.h"

namespace cp::agent::testing {

inline squish::Topology stripes(int n, int period, int phase = 0) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, ((c + phase) / period) % 2);
  }
  return t;
}

class AgentFixture : public ::testing::Test {
 protected:
  static constexpr int kWindow = 32;

  AgentFixture()
      : schedule_(diffusion::ScheduleConfig{}),
        denoiser_(make_denoiser()),
        coarse_denoiser_(make_coarse_denoiser()),
        sampler_(schedule_, coarse_denoiser_, denoiser_, fixture_cascade_config()),
        legal0_(relaxed_rules()),
        legal1_(relaxed_rules()) {
    GeneratorBackend backend;
    backend.sampler = &sampler_;
    backend.legalizers = {&legal0_, &legal1_};
    backend.store = &store_;
    backend.window = kWindow;
    backend.default_stride = kWindow / 2;
    tools_ = make_standard_tools(backend);
  }

  /// Factor 2 (16x16 coarse grid): an 8x8 coarse stage is too small for the
  /// 17-cell receptive field to learn anything from two training clips.
  static diffusion::CascadeConfig fixture_cascade_config() {
    diffusion::CascadeConfig cfg;
    cfg.factor = 2;
    return cfg;
  }

  static drc::DesignRules relaxed_rules() {
    drc::DesignRules r;
    r.min_space_nm = 30;
    r.min_width_nm = 30;
    r.min_area_nm2 = 900;
    return r;
  }

  diffusion::TabularDenoiser make_denoiser() {
    diffusion::TabularConfig cfg;
    cfg.conditions = 2;
    cfg.draws_per_bucket = 3;
    diffusion::TabularDenoiser d(schedule_, cfg);
    util::Rng rng(1);
    std::vector<squish::Topology> a, b;
    for (int p = 6; p <= 8; p += 2) {
      for (int phase = 0; phase < 2 * p; ++phase) {
        a.push_back(stripes(kWindow, p, phase));
        b.push_back(stripes(kWindow, p, phase).transposed());
      }
    }
    d.fit(a, 0, rng);
    d.fit(b, 1, rng);
    return d;
  }

  diffusion::TabularDenoiser make_coarse_denoiser() {
    diffusion::TabularConfig cfg;
    cfg.conditions = 2;
    cfg.draws_per_bucket = 3;
    diffusion::TabularDenoiser d(schedule_, cfg);
    util::Rng rng(2);
    std::vector<squish::Topology> a, b;
    for (int p = 6; p <= 8; p += 2) {
      for (int phase = 0; phase < 2 * p; ++phase) {
        a.push_back(squish::downsample_majority(stripes(kWindow, p, phase), 2));
        b.push_back(squish::downsample_majority(stripes(kWindow, p, phase).transposed(), 2));
      }
    }
    d.fit(a, 0, rng);
    d.fit(b, 1, rng);
    return d;
  }

  /// A generous physical budget for kWindow-sized stripe topologies.
  static constexpr long long kBudgetNm = 4000;

  diffusion::NoiseSchedule schedule_;
  diffusion::TabularDenoiser denoiser_;
  diffusion::TabularDenoiser coarse_denoiser_;
  diffusion::CascadeSampler sampler_;
  legalize::Legalizer legal0_;
  legalize::Legalizer legal1_;
  PatternStore store_;
  ToolRegistry tools_;
};

}  // namespace cp::agent::testing
