#include "agent/requirement.h"

#include <gtest/gtest.h>

namespace cp::agent {
namespace {

TEST(RequirementTest, DefaultsAreValid) {
  RequirementList req;
  EXPECT_EQ(validate(req), "");
}

TEST(RequirementTest, TextRenderingMatchesPaperFormat) {
  RequirementList req;
  req.topo_rows = 200;
  req.topo_cols = 200;
  req.phys_w_nm = 1500;
  req.phys_h_nm = 1500;
  req.style = "Layer-10001";
  req.count = 50000;
  const std::string text = req.to_text(1);
  EXPECT_NE(text.find("# Requirement - subtask 1"), std::string::npos);
  EXPECT_NE(text.find("Topology Size: [200, 200]"), std::string::npos);
  EXPECT_NE(text.find("Physical Size: [1500, 1500] nm"), std::string::npos);
  EXPECT_NE(text.find("Style: Layer-10001"), std::string::npos);
  EXPECT_NE(text.find("Count: 50000"), std::string::npos);
  EXPECT_NE(text.find("Extension Method: Out (Default: Out)"), std::string::npos);
  EXPECT_NE(text.find("Drop Allowed: True (Default: True)"), std::string::npos);
  EXPECT_NE(text.find("Time Limitation: None (Default: None)"), std::string::npos);
}

TEST(RequirementTest, JsonRoundTrip) {
  RequirementList req;
  req.topo_rows = 256;
  req.topo_cols = 512;
  req.phys_w_nm = 8192;
  req.phys_h_nm = 4096;
  req.style = "Layer-10003";
  req.count = 77;
  req.extension_method = "In";
  req.drop_allowed = false;
  req.time_limit_s = 12.5;
  req.sample_steps = 9;
  req.seed = 1234;
  EXPECT_EQ(RequirementList::from_json(req.to_json()), req);
}

TEST(RequirementTest, ValidationCatchesBadFields) {
  RequirementList req;
  req.topo_rows = 2;
  EXPECT_NE(validate(req), "");
  req = RequirementList();
  req.count = 0;
  EXPECT_NE(validate(req), "");
  req = RequirementList();
  req.style = "Layer-1234";
  EXPECT_NE(validate(req), "");
  req = RequirementList();
  req.extension_method = "Sideways";
  EXPECT_NE(validate(req), "");
  req = RequirementList();
  req.phys_w_nm = -5;
  EXPECT_NE(validate(req), "");
}

TEST(RequirementTest, TimeLimitRendered) {
  RequirementList req;
  req.time_limit_s = 120;
  EXPECT_NE(req.to_text(2).find("Time Limitation: 120 s"), std::string::npos);
}

}  // namespace
}  // namespace cp::agent
