#include "agent/llm_client.h"

#include <gtest/gtest.h>

namespace cp::agent {
namespace {

AgentContext base_context() {
  AgentContext ctx;
  ctx.requirement.topo_rows = 128;
  ctx.requirement.topo_cols = 128;
  ctx.requirement.style = "Layer-10001";
  ctx.window = 128;
  ctx.item_seed = 5;
  return ctx;
}

TEST(ScriptedBrainTest, DirectGenerationWhenFitsWindow) {
  ScriptedBrain brain;
  const AgentAction act = brain.decide(base_context());
  EXPECT_EQ(act.action, "topology_generation");
  EXPECT_EQ(act.input.get_int("rows", 0), 128);
  EXPECT_EQ(act.input.get_string("style", ""), "Layer-10001");
  EXPECT_FALSE(act.thought.empty());
}

TEST(ScriptedBrainTest, ExtensionWhenTargetExceedsWindow) {
  ScriptedBrain brain;
  AgentContext ctx = base_context();
  ctx.requirement.topo_rows = 512;
  ctx.requirement.topo_cols = 512;
  const AgentAction act = brain.decide(ctx);
  EXPECT_EQ(act.action, "topology_extension");
  EXPECT_EQ(act.input.get_int("target_rows", 0), 512);
  EXPECT_EQ(act.input.get_string("method", ""), "Out") << "documented default";
}

TEST(ScriptedBrainTest, ExtensionMethodFromRequirement) {
  ScriptedBrain brain;
  AgentContext ctx = base_context();
  ctx.requirement.topo_rows = 256;
  ctx.requirement.topo_cols = 256;
  ctx.requirement.extension_method = "In";
  const AgentAction act = brain.decide(ctx);
  EXPECT_EQ(act.input.get_string("method", ""), "In");
}

TEST(ScriptedBrainTest, ExtensionMethodFromExperience) {
  ScriptedBrain brain;
  ExperienceStore exp;
  // Teach the store that In works far better at 256 for this style.
  for (int i = 0; i < 20; ++i) {
    exp.record("In", "Layer-10001", 256, true);
    exp.record("Out", "Layer-10001", 256, i < 2);
  }
  AgentContext ctx = base_context();
  ctx.requirement.topo_rows = 256;
  ctx.requirement.topo_cols = 256;
  ctx.experience = &exp;
  const AgentAction act = brain.decide(ctx);
  EXPECT_EQ(act.input.get_string("method", ""), "In");
}

TEST(ScriptedBrainTest, LegalizeOnceTopologyExists) {
  ScriptedBrain brain;
  AgentContext ctx = base_context();
  ctx.current_topology_id = "topo-1";
  const AgentAction act = brain.decide(ctx);
  EXPECT_EQ(act.action, "topology_legalization");
  EXPECT_EQ(act.input.get_string("topology_id", ""), "topo-1");
  EXPECT_EQ(act.input.get_int("width_nm", 0), 2048);
}

TEST(ScriptedBrainTest, SmallTopologyFailureRegeneratesFirst) {
  ScriptedBrain brain;
  AgentContext ctx = base_context();
  ctx.current_topology_id = "topo-1";
  ctx.legalization_failures = 1;
  ctx.last_error_log = "legalization failed";
  util::Json region;
  region["upper"] = 1;
  region["left"] = 2;
  region["bottom"] = 5;
  region["right"] = 9;
  ctx.last_error_region = region;
  const AgentAction act = brain.decide(ctx);
  EXPECT_EQ(act.action, "regenerate");
}

TEST(ScriptedBrainTest, RepeatedFailureRepairsRegion) {
  ScriptedBrain brain;
  AgentContext ctx = base_context();
  ctx.current_topology_id = "topo-1";
  ctx.legalization_failures = 2;
  ctx.regenerations = 1;  // regeneration budget used
  ctx.last_error_log = "legalization failed";
  util::Json region;
  region["upper"] = 1;
  region["left"] = 2;
  region["bottom"] = 5;
  region["right"] = 9;
  ctx.last_error_region = region;
  const AgentAction act = brain.decide(ctx);
  EXPECT_EQ(act.action, "topology_modification");
  EXPECT_EQ(act.input.get_int("upper", -1), 1);
  EXPECT_EQ(act.input.get_int("right", -1), 9);
  EXPECT_EQ(act.input.get_string("style", ""), "Layer-10001");
  // The paper's transcript: in-paint the failed region after repeat failure.
  EXPECT_NE(act.thought.find("in-paint"), std::string::npos);
}

TEST(ScriptedBrainTest, LargeTopologyPrefersRepairOverRegeneration) {
  ScriptedBrain brain;
  AgentContext ctx = base_context();
  ctx.requirement.topo_rows = 512;
  ctx.requirement.topo_cols = 512;
  ctx.current_topology_id = "topo-1";
  ctx.legalization_failures = 1;
  ctx.last_error_log = "legalization failed";
  util::Json region;
  region["upper"] = 10;
  region["left"] = 20;
  region["bottom"] = 40;
  region["right"] = 60;
  ctx.last_error_region = region;
  const AgentAction act = brain.decide(ctx);
  EXPECT_EQ(act.action, "topology_modification")
      << "regenerating a 512^2 extension wastes all extension work";
}

TEST(ScriptedBrainTest, DropsWhenAllowedAndExhausted) {
  ScriptedBrain brain;
  AgentContext ctx = base_context();
  ctx.current_topology_id = "topo-1";
  ctx.legalization_failures = 4;
  ctx.regenerations = 1;
  ctx.modifications = 2;  // repair budget exhausted
  ctx.last_error_log = "legalization failed";
  const AgentAction act = brain.decide(ctx);
  EXPECT_EQ(act.action, "drop");
}

TEST(ScriptedBrainTest, NoDropMeansKeepTryingThenGiveUp) {
  ScriptedBrain brain;
  AgentContext ctx = base_context();
  ctx.requirement.drop_allowed = false;
  ctx.current_topology_id = "topo-1";
  ctx.legalization_failures = 4;
  ctx.regenerations = 1;
  ctx.modifications = 2;
  ctx.last_error_log = "legalization failed";
  const AgentAction first = brain.decide(ctx);
  EXPECT_EQ(first.action, "regenerate");
  ctx.regenerations = 5;
  const AgentAction second = brain.decide(ctx);
  EXPECT_EQ(second.action, "give_up");
}

TEST(ScriptedBrainTest, FormatRequirementsDelegatesToParser) {
  ScriptedBrain brain;
  std::vector<std::string> notes;
  const auto reqs =
      brain.format_requirements("Generate 10 patterns of 128x128 in Layer-10003 style.", &notes);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].count, 10);
  EXPECT_EQ(reqs[0].style, "Layer-10003");
  EXPECT_FALSE(notes.empty());
}

TEST(ScriptedBrainTest, SeedsVaryAcrossRegenerations) {
  ScriptedBrain brain;
  AgentContext ctx = base_context();
  const long long seed0 = brain.decide(ctx).input.get_int("seed", -1);
  ctx.regenerations = 1;
  const long long seed1 = brain.decide(ctx).input.get_int("seed", -1);
  EXPECT_NE(seed0, seed1);
}

}  // namespace
}  // namespace cp::agent
