#include "agent/nl_parser.h"

#include <gtest/gtest.h>

namespace cp::agent {
namespace {

TEST(NlParserTest, PaperRunningExample) {
  // The running example of Figure 4 / Section 4.2.
  const ParsedRequest parsed = parse_request(
      "Please generate 50,000 patterns with topology size 200x200 and physical size "
      "1500x1500 nm in Layer-10001 style using out-painting.");
  ASSERT_EQ(parsed.subtasks.size(), 1u);
  const RequirementList& req = parsed.subtasks[0];
  EXPECT_EQ(req.count, 50000);
  EXPECT_EQ(req.topo_rows, 200);
  EXPECT_EQ(req.topo_cols, 200);
  EXPECT_EQ(req.phys_w_nm, 1500);
  EXPECT_EQ(req.phys_h_nm, 1500);
  EXPECT_EQ(req.style, "Layer-10001");
  EXPECT_EQ(req.extension_method, "Out");
  EXPECT_TRUE(req.drop_allowed);
}

TEST(NlParserTest, TwoSentencesTwoSubtasks) {
  const ParsedRequest parsed = parse_request(
      "Generate 100 patterns of 128x128 in Layer-10001 style. "
      "Then create 50 samples of 256x256 in Layer-10003 style with in-painting.");
  ASSERT_EQ(parsed.subtasks.size(), 2u);
  EXPECT_EQ(parsed.subtasks[0].count, 100);
  EXPECT_EQ(parsed.subtasks[0].style, "Layer-10001");
  EXPECT_EQ(parsed.subtasks[1].count, 50);
  EXPECT_EQ(parsed.subtasks[1].topo_rows, 256);
  EXPECT_EQ(parsed.subtasks[1].style, "Layer-10003");
  EXPECT_EQ(parsed.subtasks[1].extension_method, "In");
}

TEST(NlParserTest, BothStylesExpands) {
  const ParsedRequest parsed =
      parse_request("I need 10,000 layouts of size 512 for both styles.");
  ASSERT_EQ(parsed.subtasks.size(), 2u);
  EXPECT_EQ(parsed.subtasks[0].count, 10000);
  EXPECT_EQ(parsed.subtasks[1].count, 10000);
  EXPECT_NE(parsed.subtasks[0].style, parsed.subtasks[1].style);
  EXPECT_EQ(parsed.subtasks[0].topo_rows, 512);
}

TEST(NlParserTest, QuantitySuffixes) {
  const ParsedRequest parsed = parse_request("make 50k patterns in layer 10003");
  ASSERT_EQ(parsed.subtasks.size(), 1u);
  EXPECT_EQ(parsed.subtasks[0].count, 50000);
  EXPECT_EQ(parsed.subtasks[0].style, "Layer-10003");
}

TEST(NlParserTest, PhysicalOnlyDerivesTopology) {
  const ParsedRequest parsed = parse_request("Generate 5 patterns of 2048x2048 nm.");
  ASSERT_EQ(parsed.subtasks.size(), 1u);
  EXPECT_EQ(parsed.subtasks[0].phys_w_nm, 2048);
  EXPECT_EQ(parsed.subtasks[0].topo_cols, 128);  // 16 nm per cell
}

TEST(NlParserTest, TopologyOnlyDerivesPhysical) {
  const ParsedRequest parsed = parse_request("Generate 5 patterns of 256x256.");
  ASSERT_EQ(parsed.subtasks.size(), 1u);
  EXPECT_EQ(parsed.subtasks[0].topo_rows, 256);
  EXPECT_EQ(parsed.subtasks[0].phys_w_nm, 256 * 16);
}

TEST(NlParserTest, DropPolicyNegation) {
  const ParsedRequest a = parse_request("Generate 5 patterns of 128x128, do not drop any.");
  ASSERT_EQ(a.subtasks.size(), 1u);
  EXPECT_FALSE(a.subtasks[0].drop_allowed);
  const ParsedRequest b = parse_request("Generate 5 patterns of 128x128, dropping is fine.");
  ASSERT_EQ(b.subtasks.size(), 1u);
  EXPECT_TRUE(b.subtasks[0].drop_allowed);
  const ParsedRequest c = parse_request("Generate 5 patterns of 128x128 without drops.");
  ASSERT_EQ(c.subtasks.size(), 1u);
  EXPECT_FALSE(c.subtasks[0].drop_allowed);
}

TEST(NlParserTest, TimeLimit) {
  const ParsedRequest parsed =
      parse_request("Generate 1000 patterns of 128x128 within 10 minutes.");
  ASSERT_EQ(parsed.subtasks.size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.subtasks[0].time_limit_s, 600.0);
}

TEST(NlParserTest, SeedExtraction) {
  const ParsedRequest parsed = parse_request("Generate 3 patterns of 128x128 with seed 42.");
  ASSERT_EQ(parsed.subtasks.size(), 1u);
  EXPECT_EQ(parsed.subtasks[0].seed, 42u);
}

TEST(NlParserTest, IgnoresChitchat) {
  const ParsedRequest parsed = parse_request("Hello! How are you today?");
  EXPECT_TRUE(parsed.subtasks.empty());
  EXPECT_FALSE(parsed.notes.empty());
}

TEST(NlParserTest, NumbersWithCommasNotSplit) {
  // "1,500" must parse as one quantity, and the '.' in "1.5M" as a decimal.
  const ParsedRequest parsed = parse_request("Create 1,500 samples sized 128.");
  ASSERT_EQ(parsed.subtasks.size(), 1u);
  EXPECT_EQ(parsed.subtasks[0].count, 1500);
}

TEST(NlParserTest, SizeWithSpacedX) {
  const ParsedRequest parsed = parse_request("Generate 7 patterns, 192 x 192 topology.");
  ASSERT_EQ(parsed.subtasks.size(), 1u);
  EXPECT_EQ(parsed.subtasks[0].topo_rows, 192);
}

TEST(NlParserTest, SplitClauses) {
  const auto clauses = detail::split_clauses("Do A. Then do B; also C\nand D.");
  ASSERT_EQ(clauses.size(), 4u);
  EXPECT_EQ(clauses[0], "Do A");
}

TEST(NlParserTest, ParseSizePairVariants) {
  long long a = 0, b = 0;
  EXPECT_TRUE(detail::parse_size_pair("200x200", &a, &b));
  EXPECT_EQ(a, 200);
  EXPECT_TRUE(detail::parse_size_pair("1024X512", &a, &b));
  EXPECT_EQ(b, 512);
  EXPECT_TRUE(detail::parse_size_pair("64*32", &a, &b));
  EXPECT_FALSE(detail::parse_size_pair("axb", &a, &b));
  EXPECT_FALSE(detail::parse_size_pair("200", &a, &b));
}

TEST(NlParserTest, OutPaintingSpelledVariants) {
  for (const char* phrase :
       {"use outpainting", "use out-painting", "use outpaint", "use out painting"}) {
    const ParsedRequest parsed =
        parse_request(std::string("Generate 2 patterns of 256x256, ") + phrase + ".");
    ASSERT_EQ(parsed.subtasks.size(), 1u) << phrase;
    EXPECT_EQ(parsed.subtasks[0].extension_method, "Out") << phrase;
  }
}

TEST(NlParserTest, NotesExplainDecisions) {
  const ParsedRequest parsed = parse_request("Generate 10 patterns of 128x128.");
  bool count_note = false;
  for (const auto& n : parsed.notes) {
    if (n.find("count 10") != std::string::npos) count_note = true;
  }
  EXPECT_TRUE(count_note);
}

}  // namespace
}  // namespace cp::agent
