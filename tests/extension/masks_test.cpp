#include "extension/masks.h"

#include <gtest/gtest.h>

namespace cp::extension {
namespace {

TEST(MasksTest, FullMask) {
  EXPECT_EQ(full_mask(3, 4, 1).popcount(), 12u);
  EXPECT_EQ(full_mask(3, 4, 0).popcount(), 0u);
}

TEST(MasksTest, RowBand) {
  const auto m = keep_except_row_band(8, 8, 3, 5);
  EXPECT_EQ(m.popcount(), 64u - 16u);
  EXPECT_EQ(m.at(2, 0), 1);
  EXPECT_EQ(m.at(3, 0), 0);
  EXPECT_EQ(m.at(4, 7), 0);
  EXPECT_EQ(m.at(5, 0), 1);
}

TEST(MasksTest, ColBand) {
  const auto m = keep_except_col_band(8, 8, 0, 2);
  EXPECT_EQ(m.popcount(), 64u - 16u);
  EXPECT_EQ(m.at(0, 0), 0);
  EXPECT_EQ(m.at(7, 1), 0);
  EXPECT_EQ(m.at(0, 2), 1);
}

TEST(MasksTest, Box) {
  const auto m = keep_except_box(8, 8, 2, 2, 6, 6);
  EXPECT_EQ(m.popcount(), 64u - 16u);
  EXPECT_EQ(m.at(2, 2), 0);
  EXPECT_EQ(m.at(5, 5), 0);
  EXPECT_EQ(m.at(6, 6), 1);
  EXPECT_EQ(m.at(1, 2), 1);
}

TEST(MasksTest, BandsClampToBounds) {
  const auto m = keep_except_row_band(4, 4, 2, 99);
  EXPECT_EQ(m.popcount(), 8u);
  const auto b = keep_except_box(4, 4, -0, 0, 99, 99);
  EXPECT_EQ(b.popcount(), 0u);
}

}  // namespace
}  // namespace cp::extension
