#include "extension/planner.h"

#include <gtest/gtest.h>

#include "diffusion/tabular_denoiser.h"

namespace cp::extension {
namespace {

using diffusion::DiffusionSampler;
using diffusion::NoiseSchedule;
using diffusion::ScheduleConfig;
using diffusion::TabularConfig;
using diffusion::TabularDenoiser;

squish::Topology stripes(int n, int period) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

class ExtensionTest : public ::testing::Test {
 protected:
  ExtensionTest() : schedule_(ScheduleConfig{}), denoiser_(make_denoiser()) {}

  TabularDenoiser make_denoiser() {
    TabularConfig cfg;
    cfg.conditions = 1;
    cfg.draws_per_bucket = 3;
    TabularDenoiser d(schedule_, cfg);
    util::Rng rng(1);
    std::vector<squish::Topology> data;
    for (int p = 2; p <= 4; ++p) data.push_back(stripes(32, p));
    d.fit(data, 0, rng);
    return d;
  }

  ExtensionConfig config() {
    ExtensionConfig ec;
    ec.window = 32;
    ec.stride = 16;
    ec.sample_steps = 8;
    return ec;
  }

  NoiseSchedule schedule_;
  TabularDenoiser denoiser_;
};

TEST(ExtensionFormulas, OutPaintMatchesPaper) {
  // N_out = (ceil((W-L)/S)+1)(ceil((H-L)/S)+1)
  EXPECT_EQ(expected_samples_outpaint(256, 256, 128, 64), (2 + 1) * (2 + 1));
  EXPECT_EQ(expected_samples_outpaint(512, 512, 128, 64), (6 + 1) * (6 + 1));
  EXPECT_EQ(expected_samples_outpaint(128, 128, 128, 64), 1);
  EXPECT_EQ(expected_samples_outpaint(300, 128, 128, 100), (2 + 1) * 1);
}

TEST(ExtensionFormulas, InPaintMatchesPaper) {
  // N_in = (2 ceil(W/L) - 1)(2 ceil(H/L) - 1)
  EXPECT_EQ(expected_samples_inpaint(256, 256, 128), 3 * 3);
  EXPECT_EQ(expected_samples_inpaint(512, 512, 128), 7 * 7);
  EXPECT_EQ(expected_samples_inpaint(128, 128, 128), 1);
  EXPECT_EQ(expected_samples_inpaint(1024, 1024, 128), 15 * 15);
  EXPECT_EQ(expected_samples_inpaint(300, 128, 128), 5 * 1);
}

TEST(ExtensionFormulas, MethodParsing) {
  EXPECT_EQ(method_from_string("out"), Method::kOutPainting);
  EXPECT_EQ(method_from_string("Out-Painting"), Method::kOutPainting);
  EXPECT_EQ(method_from_string("inpaint"), Method::kInPainting);
  EXPECT_EQ(method_from_string("IN"), Method::kInPainting);
  EXPECT_THROW(method_from_string("sideways"), std::invalid_argument);
  EXPECT_STREQ(to_string(Method::kOutPainting), "Out-Painting");
}

TEST_F(ExtensionTest, OutPaintProducesTargetSize) {
  DiffusionSampler s(schedule_, denoiser_);
  util::Rng rng(3);
  const ExtensionResult res = extend_outpaint(s, squish::Topology(), 64, 96, config(), rng);
  EXPECT_EQ(res.topology.rows(), 64);
  EXPECT_EQ(res.topology.cols(), 96);
  EXPECT_GT(res.model_calls, 1);
  EXPECT_GT(res.topology.popcount(), 0u);
}

TEST_F(ExtensionTest, OutPaintPreservesSeed) {
  DiffusionSampler s(schedule_, denoiser_);
  util::Rng rng(4);
  const squish::Topology seed = stripes(32, 2);
  const ExtensionResult res = extend_outpaint(s, seed, 64, 64, config(), rng);
  // The seed occupies the top-left window and out-painting keeps known
  // regions: the top-left window must still be the seed.
  EXPECT_EQ(res.topology.window(0, 0, 32, 32), seed);
}

TEST_F(ExtensionTest, InPaintProducesTargetSize) {
  DiffusionSampler s(schedule_, denoiser_);
  util::Rng rng(5);
  const ExtensionResult res = extend_inpaint(s, squish::Topology(), 64, 64, config(), rng);
  EXPECT_EQ(res.topology.rows(), 64);
  EXPECT_EQ(res.topology.cols(), 64);
  // tiles (4) + vertical seams (2) + horizontal seams (2) + corners (1) = 9
  EXPECT_EQ(res.model_calls, 9);
}

TEST_F(ExtensionTest, ModelCallsMatchFormulaOnAlignedTargets) {
  DiffusionSampler s(schedule_, denoiser_);
  util::Rng rng(6);
  const ExtensionConfig ec = config();
  const ExtensionResult out = extend_outpaint(s, squish::Topology(), 64, 64, ec, rng);
  EXPECT_EQ(out.model_calls, expected_samples_outpaint(64, 64, ec.window, ec.stride));
  const ExtensionResult in = extend_inpaint(s, squish::Topology(), 96, 64, ec, rng);
  EXPECT_EQ(in.model_calls, expected_samples_inpaint(96, 64, ec.window));
}

TEST_F(ExtensionTest, RejectsTargetsSmallerThanWindow) {
  DiffusionSampler s(schedule_, denoiser_);
  util::Rng rng(7);
  EXPECT_THROW(extend_outpaint(s, squish::Topology(), 16, 64, config(), rng),
               std::invalid_argument);
  EXPECT_THROW(extend_inpaint(s, squish::Topology(), 64, 16, config(), rng),
               std::invalid_argument);
}

TEST_F(ExtensionTest, RejectsBadSeedSize) {
  DiffusionSampler s(schedule_, denoiser_);
  util::Rng rng(8);
  EXPECT_THROW(extend_outpaint(s, stripes(16, 2), 64, 64, config(), rng),
               std::invalid_argument);
}

TEST_F(ExtensionTest, RejectsBadStride) {
  DiffusionSampler s(schedule_, denoiser_);
  util::Rng rng(9);
  ExtensionConfig ec = config();
  ec.stride = 0;
  EXPECT_THROW(extend_outpaint(s, squish::Topology(), 64, 64, ec, rng), std::invalid_argument);
  ec.stride = 64;
  EXPECT_THROW(extend_outpaint(s, squish::Topology(), 64, 64, ec, rng), std::invalid_argument);
}

TEST_F(ExtensionTest, PlannerDispatch) {
  DiffusionSampler s(schedule_, denoiser_);
  util::Rng rng(10);
  ExtensionConfig ec = config();
  ec.stride = 8;  // makes N_out (25) differ from N_in (9) at this size
  const ExtensionResult out =
      extend(s, Method::kOutPainting, squish::Topology(), 64, 64, ec, rng);
  const ExtensionResult in =
      extend(s, Method::kInPainting, squish::Topology(), 64, 64, ec, rng);
  EXPECT_EQ(out.topology.rows(), 64);
  EXPECT_EQ(in.topology.rows(), 64);
  EXPECT_EQ(out.model_calls, 25);
  EXPECT_EQ(in.model_calls, 9);
}

TEST_F(ExtensionTest, NonAlignedTargetsHandled) {
  DiffusionSampler s(schedule_, denoiser_);
  util::Rng rng(11);
  const ExtensionResult res = extend_outpaint(s, squish::Topology(), 70, 50, config(), rng);
  EXPECT_EQ(res.topology.rows(), 70);
  EXPECT_EQ(res.topology.cols(), 50);
  const ExtensionResult in = extend_inpaint(s, squish::Topology(), 50, 70, config(), rng);
  EXPECT_EQ(in.topology.rows(), 50);
  EXPECT_EQ(in.topology.cols(), 70);
}

TEST_F(ExtensionTest, ExtendedDensityTracksData) {
  DiffusionSampler s(schedule_, denoiser_);
  util::Rng rng(12);
  const ExtensionResult res = extend_outpaint(s, squish::Topology(), 96, 96, config(), rng);
  EXPECT_NEAR(res.topology.density(), 0.5, 0.15);
}

TEST_F(ExtensionTest, ParallelExtensionBitIdenticalToSerial) {
  // The tile wave scheduler must make pooled extension reproduce the serial
  // sweep exactly, for both methods (see extension/tile_schedule.h).
  DiffusionSampler s(schedule_, denoiser_);
  ASSERT_TRUE(s.thread_safe());
  util::ThreadPool pool(4);
  ExtensionConfig ec = config();
  ec.stride = 16;
  for (int dims : {64, 70}) {
    util::Rng serial_rng(42), pooled_rng(42);
    const ExtensionResult serial =
        extend_outpaint(s, squish::Topology(), dims, dims, ec, serial_rng);
    const ExtensionResult pooled =
        extend_outpaint(s, squish::Topology(), dims, dims, ec, pooled_rng, &pool);
    EXPECT_EQ(serial.topology, pooled.topology) << "outpaint " << dims;
    EXPECT_EQ(serial.model_calls, pooled.model_calls);
  }
  {
    util::Rng serial_rng(43), pooled_rng(43);
    const ExtensionResult serial =
        extend_inpaint(s, squish::Topology(), 64, 64, ec, serial_rng);
    const ExtensionResult pooled =
        extend_inpaint(s, squish::Topology(), 64, 64, ec, pooled_rng, &pool);
    EXPECT_EQ(serial.topology, pooled.topology) << "inpaint";
    EXPECT_EQ(serial.model_calls, pooled.model_calls);
  }
}

TEST_F(ExtensionTest, SeededExtensionParallelAlsoDeterministic) {
  DiffusionSampler s(schedule_, denoiser_);
  util::ThreadPool pool(3);
  const squish::Topology seed = stripes(32, 4);
  util::Rng serial_rng(7), pooled_rng(7);
  const ExtensionResult serial = extend_outpaint(s, seed, 96, 96, config(), serial_rng);
  const ExtensionResult pooled =
      extend_outpaint(s, seed, 96, 96, config(), pooled_rng, &pool);
  EXPECT_EQ(serial.topology, pooled.topology);
  // The seed occupies the top-left window and must survive extension intact.
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 32; ++c) {
      ASSERT_EQ(pooled.topology.at(r, c), seed.at(r, c));
    }
  }
}

}  // namespace
}  // namespace cp::extension
