#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cp::metrics {
namespace {

using squish::SquishPattern;
using squish::Topology;

Topology with_complexity(int cx, int cy) {
  // cx vertical stripe groups, cy horizontal groups on a 64x64 canvas.
  Topology t(64, 64);
  for (int r = 0; r < 64; ++r) {
    for (int c = 0; c < 64; ++c) {
      t.set(r, c, ((c * cx / 64) + (r * cy / 64)) % 2);
    }
  }
  return t;
}

TEST(DiversityTest, EmptyLibraryZero) {
  EXPECT_DOUBLE_EQ(diversity({}), 0.0);
}

TEST(DiversityTest, IdenticalPatternsZero) {
  std::vector<Topology> lib(10, with_complexity(4, 4));
  EXPECT_DOUBLE_EQ(diversity(lib), 0.0);
}

TEST(DiversityTest, UniformOverNBinsIsLog2N) {
  std::vector<Topology> lib;
  for (int i = 1; i <= 8; ++i) lib.push_back(with_complexity(2 * i, 4));
  // All 8 complexities distinct and equally frequent -> H = 3 bits.
  EXPECT_NEAR(diversity(lib), 3.0, 1e-9);
}

TEST(DiversityTest, SkewedDistributionLowerThanUniform) {
  std::vector<Topology> uniform, skewed;
  for (int i = 0; i < 8; ++i) {
    uniform.push_back(with_complexity(2 + 2 * (i % 4), 4));
    skewed.push_back(with_complexity(i < 6 ? 2 : 2 + 2 * (i % 4), 4));
  }
  EXPECT_GT(diversity(uniform), diversity(skewed));
}

TEST(DiversityTest, HistogramCountsComplexities) {
  std::vector<Topology> lib{with_complexity(4, 4), with_complexity(4, 4),
                            with_complexity(8, 4)};
  const auto hist = complexity_histogram(lib);
  EXPECT_EQ(hist.size(), 2u);
  int total = 0;
  for (const auto& [key, count] : hist) total += count;
  EXPECT_EQ(total, 3);
}

SquishPattern legal_pattern() {
  SquishPattern p;
  p.topology = Topology(3, 3);
  p.topology.set(1, 1, 1);
  p.dx = {100, 80, 100};
  p.dy = {100, 80, 100};
  return p;
}

SquishPattern illegal_pattern() {
  SquishPattern p = legal_pattern();
  p.dx[1] = 10;  // width violation
  return p;
}

drc::DesignRules rules() {
  drc::DesignRules r;
  r.min_space_nm = 40;
  r.min_width_nm = 40;
  r.min_area_nm2 = 1600;
  return r;
}

TEST(LegalityTest, CountsLegalFraction) {
  const LegalityResult res = legality({legal_pattern(), illegal_pattern(), legal_pattern()},
                                      rules());
  EXPECT_EQ(res.total, 3);
  EXPECT_EQ(res.legal, 2);
  EXPECT_NEAR(res.ratio(), 2.0 / 3.0, 1e-12);
}

TEST(LegalityTest, EmptyLibrary) {
  const LegalityResult res = legality({}, rules());
  EXPECT_EQ(res.total, 0);
  EXPECT_DOUBLE_EQ(res.ratio(), 0.0);
}

TEST(LegalityTest, DiversityOfLegalIgnoresIllegal) {
  // One legal pattern plus many illegal with different complexity: the
  // diversity over legal patterns must be 0 (single bin).
  std::vector<SquishPattern> lib{legal_pattern(), illegal_pattern(), illegal_pattern()};
  EXPECT_DOUBLE_EQ(diversity_of_legal(lib, rules()), 0.0);
}

}  // namespace
}  // namespace cp::metrics
