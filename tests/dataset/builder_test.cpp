#include "dataset/builder.h"

#include <gtest/gtest.h>

#include "metrics/metrics.h"

namespace cp::dataset {
namespace {

TEST(BuilderTest, BuildsRequestedCount) {
  DatasetConfig dc;
  dc.style = 0;
  dc.count = 24;
  dc.seed = 1;
  const Dataset ds = build_dataset(dc);
  EXPECT_EQ(ds.topologies.size(), 24u);
  for (const auto& t : ds.topologies) {
    EXPECT_EQ(t.rows(), dc.topo_size);
    EXPECT_EQ(t.cols(), dc.topo_size);
    EXPECT_GT(t.popcount(), 0u);
  }
}

TEST(BuilderTest, DeterministicForSeed) {
  DatasetConfig dc;
  dc.style = 1;
  dc.count = 8;
  dc.seed = 42;
  const Dataset a = build_dataset(dc);
  const Dataset b = build_dataset(dc);
  ASSERT_EQ(a.topologies.size(), b.topologies.size());
  for (std::size_t i = 0; i < a.topologies.size(); ++i) {
    EXPECT_EQ(a.topologies[i], b.topologies[i]);
  }
}

TEST(BuilderTest, DifferentSeedsDiffer) {
  DatasetConfig dc;
  dc.style = 0;
  dc.count = 4;
  dc.seed = 1;
  const Dataset a = build_dataset(dc);
  dc.seed = 2;
  const Dataset b = build_dataset(dc);
  int equal = 0;
  for (std::size_t i = 0; i < a.topologies.size(); ++i) {
    equal += a.topologies[i] == b.topologies[i];
  }
  EXPECT_LT(equal, 2);
}

TEST(BuilderTest, LargerWindowsBuild) {
  DatasetConfig dc;
  dc.style = 1;
  dc.count = 4;
  dc.window_nm = 4096;
  dc.topo_size = 256;
  dc.seed = 3;
  const Dataset ds = build_dataset(dc);
  EXPECT_EQ(ds.topologies.size(), 4u);
  EXPECT_EQ(ds.topologies[0].rows(), 256);
}

TEST(BuilderTest, DatasetHasDiversity) {
  DatasetConfig dc;
  dc.style = 0;
  dc.count = 48;
  dc.seed = 5;
  const Dataset ds = build_dataset(dc);
  EXPECT_GT(metrics::diversity(ds.topologies), 1.5)
      << "clips should not all share one complexity";
}

TEST(BuilderTest, StylesProduceDifferentStatistics) {
  DatasetConfig dc;
  dc.count = 24;
  dc.seed = 6;
  dc.style = 0;
  const Dataset routing = build_dataset(dc);
  dc.style = 1;
  const Dataset blocks = build_dataset(dc);
  double d0 = 0, d1 = 0;
  for (const auto& t : routing.topologies) d0 += t.density();
  for (const auto& t : blocks.topologies) d1 += t.density();
  d0 /= static_cast<double>(routing.topologies.size());
  d1 /= static_cast<double>(blocks.topologies.size());
  EXPECT_GT(d0, d1 + 0.1);
}

}  // namespace
}  // namespace cp::dataset
