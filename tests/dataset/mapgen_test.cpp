#include "dataset/mapgen.h"

#include <gtest/gtest.h>

#include "drc/checker.h"
#include "squish/squish.h"

namespace cp::dataset {
namespace {

using geometry::Rect;

/// DRC-check a window clipped from the interior of a generated map.
void expect_window_clean(const StyleParams& style, const std::vector<Rect>& map,
                         geometry::Coord map_nm) {
  const geometry::Coord inset = 300;
  const geometry::Coord win = 2048;
  for (geometry::Coord y = inset; y + win + inset <= map_nm; y += win) {
    for (geometry::Coord x = inset; x + win + inset <= map_nm; x += win) {
      const squish::SquishPattern clip = squish::squish(map, Rect{x, y, x + win, y + win});
      const drc::DrcReport report = drc::check(clip, style.rules);
      EXPECT_TRUE(report.clean())
          << style.name << " window at (" << x << "," << y
          << "): " << (report.violations.empty() ? "" : report.violations[0].message);
    }
  }
}

TEST(MapgenTest, RoutingMapIsDrcCleanByConstruction) {
  const StyleParams style = style_params(0);
  util::Rng rng(101);
  const geometry::Coord map_nm = 8192;
  expect_window_clean(style, generate_routing_map(style, map_nm, rng), map_nm);
}

TEST(MapgenTest, BlockMapIsDrcCleanByConstruction) {
  const StyleParams style = style_params(1);
  util::Rng rng(202);
  const geometry::Coord map_nm = 8192;
  expect_window_clean(style, generate_block_map(style, map_nm, rng), map_nm);
}

TEST(MapgenTest, MapsAreNonTrivial) {
  for (int s = 0; s < kStyleCount; ++s) {
    const StyleParams style = style_params(s);
    util::Rng rng(7 + s);
    const auto map = generate_map(style, 8192, rng);
    EXPECT_GT(map.size(), 20u) << style.name;
    // All rects inside the map and non-empty.
    for (const Rect& r : map) {
      EXPECT_FALSE(r.empty());
      EXPECT_GE(r.x0, 0);
      EXPECT_LE(r.x1, 8192);
    }
  }
}

TEST(MapgenTest, StylesHaveDistinctDensity) {
  util::Rng rng(5);
  const auto routing = generate_map(style_params(0), 8192, rng);
  const auto blocks = generate_map(style_params(1), 8192, rng);
  auto density = [](const std::vector<Rect>& rects) {
    const squish::SquishPattern p = squish::squish(rects, Rect{256, 256, 8192 - 256, 8192 - 256});
    double filled = 0, total = 0;
    for (int r = 0; r < p.topology.rows(); ++r) {
      for (int c = 0; c < p.topology.cols(); ++c) {
        const double cell = static_cast<double>(p.dx[c]) * static_cast<double>(p.dy[r]);
        total += cell;
        if (p.topology.at(r, c)) filled += cell;
      }
    }
    return filled / total;
  };
  const double d0 = density(routing);
  const double d1 = density(blocks);
  EXPECT_GT(d0, d1 * 1.5) << "routing layer should be clearly denser";
  EXPECT_GT(d1, 0.02);
}

TEST(MapgenTest, EdgesAreSnapped) {
  // Every y edge of a routing map must be a multiple of the snap grid
  // (x edges of tracks are free; straps span track x extents).
  const StyleParams style = style_params(0);
  util::Rng rng(33);
  for (const Rect& r : generate_routing_map(style, 4096, rng)) {
    EXPECT_EQ(r.y0 % style.snap_nm, 0);
    EXPECT_EQ(r.y1 % style.snap_nm, 0);
  }
}

TEST(MapgenTest, DeterministicForSeed) {
  const StyleParams style = style_params(0);
  util::Rng a(9), b(9);
  const auto m1 = generate_map(style, 4096, a);
  const auto m2 = generate_map(style, 4096, b);
  ASSERT_EQ(m1.size(), m2.size());
  for (std::size_t i = 0; i < m1.size(); ++i) EXPECT_EQ(m1[i], m2[i]);
}

}  // namespace
}  // namespace cp::dataset
