#include "geometry/polygon.h"

#include <gtest/gtest.h>

namespace cp::geometry {
namespace {

TEST(RectTest, BasicMetrics) {
  const Rect r{0, 0, 10, 4};
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 4);
  EXPECT_EQ(r.area(), 40);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE((Rect{5, 5, 5, 9}).empty());
  EXPECT_TRUE((Rect{5, 5, 3, 9}).empty());
}

TEST(RectTest, ContainsHalfOpen) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{9, 9}));
  EXPECT_FALSE(r.contains(Point{10, 5}));
  EXPECT_FALSE(r.contains(Point{5, 10}));
}

TEST(RectTest, Intersects) {
  const Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.intersects(Rect{5, 5, 15, 15}));
  EXPECT_FALSE(a.intersects(Rect{10, 0, 20, 10}));  // edge touch is not overlap
  EXPECT_FALSE(a.intersects(Rect{11, 0, 20, 10}));
}

TEST(RectTest, ClippedTo) {
  const Rect a{0, 0, 10, 10};
  const Rect c = a.clipped_to(Rect{5, -5, 20, 5});
  EXPECT_EQ(c, (Rect{5, 0, 10, 5}));
  EXPECT_TRUE(a.clipped_to(Rect{20, 20, 30, 30}).empty());
}

TEST(RectTest, TouchesIncludesEdgesExcludesCorners) {
  const Rect a{0, 0, 10, 10};
  EXPECT_TRUE(a.touches(Rect{10, 0, 20, 10}));   // shared edge
  EXPECT_TRUE(a.touches(Rect{5, 5, 7, 7}));      // overlap
  EXPECT_FALSE(a.touches(Rect{10, 10, 20, 20})); // corner point only
  EXPECT_FALSE(a.touches(Rect{11, 0, 20, 10}));  // gap
}

TEST(BoundingBoxTest, OfSet) {
  const Rect b = bounding_box({{0, 0, 2, 2}, {5, -3, 7, 1}});
  EXPECT_EQ(b, (Rect{0, -3, 7, 2}));
  EXPECT_TRUE(bounding_box({}).empty());
}

TEST(PolygonTest, AreaAndMinFeature) {
  Polygon p;
  p.rects = {{0, 0, 10, 4}, {0, 4, 4, 12}};  // L shape
  EXPECT_EQ(p.area(), 40 + 32);
  EXPECT_EQ(p.bbox(), (Rect{0, 0, 10, 12}));
  EXPECT_EQ(p.min_feature(), 4);
}

TEST(GroupTest, GroupsTouchingRects) {
  // Two rects abutting on an edge + one isolated.
  const auto polys = group_into_polygons({{0, 0, 4, 4}, {4, 0, 8, 4}, {20, 20, 24, 24}});
  ASSERT_EQ(polys.size(), 2u);
  const std::size_t big = polys[0].rects.size() == 2 ? 0 : 1;
  EXPECT_EQ(polys[big].rects.size(), 2u);
  EXPECT_EQ(polys[1 - big].rects.size(), 1u);
}

TEST(GroupTest, CornerTouchDoesNotGroup) {
  const auto polys = group_into_polygons({{0, 0, 4, 4}, {4, 4, 8, 8}});
  EXPECT_EQ(polys.size(), 2u);
}

TEST(GroupTest, OverlappingRectsGroup) {
  const auto polys = group_into_polygons({{0, 0, 6, 6}, {4, 4, 10, 10}});
  EXPECT_EQ(polys.size(), 1u);
}

TEST(GroupTest, ChainGroupsTransitively) {
  std::vector<Rect> rects;
  for (int i = 0; i < 10; ++i) rects.push_back(Rect{i * 4, 0, i * 4 + 4, 4});
  const auto polys = group_into_polygons(rects);
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_EQ(polys[0].rects.size(), 10u);
}

TEST(GroupTest, EmptyInput) {
  EXPECT_TRUE(group_into_polygons({}).empty());
}

}  // namespace
}  // namespace cp::geometry
