#include "geometry/extract.h"

#include <gtest/gtest.h>

#include "squish/topology.h"

namespace cp::geometry {
namespace {

using cp::squish::Topology;

TEST(ExtractTest, SingleComponent) {
  Topology t(4, 4);
  t.set(1, 1, 1);
  t.set(1, 2, 1);
  t.set(2, 1, 1);
  const auto comps = connected_components(t.view());
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].cells.size(), 3u);
  EXPECT_EQ(comps[0].min_row, 1);
  EXPECT_EQ(comps[0].max_row, 2);
  EXPECT_EQ(comps[0].min_col, 1);
  EXPECT_EQ(comps[0].max_col, 2);
}

TEST(ExtractTest, DiagonalCellsAreSeparate) {
  Topology t(3, 3);
  t.set(0, 0, 1);
  t.set(1, 1, 1);
  t.set(2, 2, 1);
  EXPECT_EQ(connected_components(t.view()).size(), 3u);
}

TEST(ExtractTest, EmptyGridNoComponents) {
  Topology t(5, 5);
  EXPECT_TRUE(connected_components(t.view()).empty());
}

TEST(ExtractTest, FullGridOneComponent) {
  Topology t(6, 7, 1);
  const auto comps = connected_components(t.view());
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].cells.size(), 42u);
}

TEST(ExtractTest, RectDecompositionOfRectangle) {
  Topology t(6, 6);
  for (int r = 1; r < 4; ++r) {
    for (int c = 2; c < 5; ++c) t.set(r, c, 1);
  }
  const auto rects = grid_to_cell_rects(t.view());
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], (Rect{2, 1, 5, 4}));
}

TEST(ExtractTest, RectDecompositionOfLShape) {
  // Rows 0-1: cols 0-3; rows 2-3: cols 0-1 (an L).
  Topology t(4, 4);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 4; ++c) t.set(r, c, 1);
  for (int r = 2; r < 4; ++r)
    for (int c = 0; c < 2; ++c) t.set(r, c, 1);
  const auto rects = grid_to_cell_rects(t.view());
  // The decomposition is 2 rects; total covered area must match.
  Coord area = 0;
  for (const Rect& r : rects) area += r.area();
  EXPECT_EQ(area, 8 + 4);
  EXPECT_EQ(rects.size(), 2u);
}

TEST(ExtractTest, DecompositionCoversExactly) {
  // Random-ish blob: verify exact cover (no overlap, no gap).
  Topology t(8, 8);
  const int cells[][2] = {{1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 2}, {3, 3}, {4, 3}};
  for (auto& rc : cells) t.set(rc[0], rc[1], 1);
  const auto rects = grid_to_cell_rects(t.view());
  Topology cover(8, 8);
  for (const Rect& r : rects) {
    for (Coord y = r.y0; y < r.y1; ++y) {
      for (Coord x = r.x0; x < r.x1; ++x) {
        EXPECT_EQ(cover.at(static_cast<int>(y), static_cast<int>(x)), 0) << "overlap";
        cover.set(static_cast<int>(y), static_cast<int>(x), 1);
      }
    }
  }
  EXPECT_EQ(cover, t);
}

TEST(ExtractTest, MultipleComponentsEachDecomposed) {
  Topology t(5, 9);
  t.set(0, 0, 1);
  for (int c = 4; c < 7; ++c) t.set(2, c, 1);
  const auto rects = grid_to_cell_rects(t.view());
  ASSERT_EQ(rects.size(), 2u);
}

}  // namespace
}  // namespace cp::geometry
