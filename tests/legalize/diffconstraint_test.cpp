#include "legalize/diffconstraint.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cp::legalize {
namespace {

Coord interval_sum(const std::vector<Coord>& deltas, int b, int e) {
  Coord s = 0;
  for (int i = b; i < e; ++i) s += deltas[static_cast<std::size_t>(i)];
  return s;
}

TEST(DiffConstraintTest, UnconstrainedSolvesToTotal) {
  DiffConstraintSystem sys(4);
  const SolveResult res = sys.solve(100, 1);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(interval_sum(*res.deltas, 0, 4), 100);
  for (Coord d : *res.deltas) EXPECT_GE(d, 1);
}

TEST(DiffConstraintTest, SlackIsBalanced) {
  DiffConstraintSystem sys(10);
  const SolveResult res = sys.solve(1000, 1);
  ASSERT_TRUE(res.ok());
  for (Coord d : *res.deltas) EXPECT_NEAR(static_cast<double>(d), 100.0, 1.0);
}

TEST(DiffConstraintTest, SatisfiesIntervalBounds) {
  DiffConstraintSystem sys(6);
  sys.add(0, 2, 50);
  sys.add(2, 4, 80);
  sys.add(1, 5, 120);
  const SolveResult res = sys.solve(300, 1);
  ASSERT_TRUE(res.ok());
  EXPECT_GE(interval_sum(*res.deltas, 0, 2), 50);
  EXPECT_GE(interval_sum(*res.deltas, 2, 4), 80);
  EXPECT_GE(interval_sum(*res.deltas, 1, 5), 120);
  EXPECT_EQ(interval_sum(*res.deltas, 0, 6), 300);
}

TEST(DiffConstraintTest, TightChainExactlyFeasible) {
  DiffConstraintSystem sys(4);
  sys.add(0, 1, 25);
  sys.add(1, 2, 25);
  sys.add(2, 3, 25);
  sys.add(3, 4, 25);
  const SolveResult res = sys.solve(100, 1);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ((*res.deltas)[0], 25);
  EXPECT_EQ((*res.deltas)[3], 25);
}

TEST(DiffConstraintTest, InfeasibleReportsCriticalInterval) {
  DiffConstraintSystem sys(4);
  sys.add(1, 3, 500);
  const SolveResult res = sys.solve(100, 1);
  ASSERT_FALSE(res.ok());
  const SolveFailure& f = *res.failure;
  EXPECT_GE(f.required_nm, 500);
  EXPECT_EQ(f.available_nm, 100);
  EXPECT_EQ(f.begin, 1) << "region should start at the violated constraint";
  EXPECT_EQ(f.end, 3) << "region should end at the violated constraint";
}

TEST(DiffConstraintTest, PitchAloneCanBeInfeasible) {
  DiffConstraintSystem sys(10);
  const SolveResult res = sys.solve(5, 1);  // 10 intervals of >= 1 need >= 10
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.failure->required_nm, 10);
}

TEST(DiffConstraintTest, DuplicateConstraintsKeepStrongest) {
  DiffConstraintSystem sys(2);
  sys.add(0, 2, 10);
  sys.add(0, 2, 90);
  sys.add(0, 2, 40);
  const SolveResult res = sys.solve(100, 1);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(sys.minimum_total(1), 90);
}

TEST(DiffConstraintTest, MinimumTotalMatchesChain) {
  DiffConstraintSystem sys(6);
  sys.add(0, 2, 50);  // chain: [0,2) then [2,5) then [5,6) pitch
  sys.add(2, 5, 70);
  EXPECT_EQ(sys.minimum_total(1), 50 + 70 + 1);
}

TEST(DiffConstraintTest, OverlappingConstraintsNotAdditive) {
  DiffConstraintSystem sys(4);
  sys.add(0, 3, 60);
  sys.add(1, 4, 60);  // overlaps; longest path takes pitch + max structure
  const Coord need = sys.minimum_total(1);
  // Chain 0->1 (pitch 1) -> [1,4) 60 = 61, or [0,3) 60 -> 3->4 pitch = 61.
  EXPECT_EQ(need, 61);
}

TEST(DiffConstraintTest, ZeroIntervalsEdgeCases) {
  DiffConstraintSystem sys(0);
  EXPECT_TRUE(sys.solve(0, 1).ok());
  EXPECT_FALSE(sys.solve(10, 1).ok());
}

TEST(DiffConstraintTest, BadIntervalThrows) {
  DiffConstraintSystem sys(4);
  EXPECT_THROW(sys.add(2, 2, 10), std::invalid_argument);
  EXPECT_THROW(sys.add(-1, 2, 10), std::invalid_argument);
  EXPECT_THROW(sys.add(0, 5, 10), std::invalid_argument);
}

TEST(DiffConstraintTest, RandomizedFeasibilityOracle) {
  // Property: solve() succeeds iff total >= minimum_total, and when it
  // succeeds every constraint holds and the deltas sum exactly to total.
  util::Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = rng.uniform_int(3, 12);
    DiffConstraintSystem sys(n);
    const int m = rng.uniform_int(0, 10);
    std::vector<IntervalConstraint> cons;
    for (int i = 0; i < m; ++i) {
      const int b = rng.uniform_int(0, n - 1);
      const int e = rng.uniform_int(b + 1, n);
      const Coord bound = rng.uniform_int(1, 120);
      sys.add(b, e, bound);
      cons.push_back(IntervalConstraint{b, e, bound});
    }
    const Coord need = sys.minimum_total(2);
    for (const Coord total : {need - 1, need, need + 37}) {
      const SolveResult res = sys.solve(total, 2);
      if (total < need) {
        EXPECT_FALSE(res.ok());
        continue;
      }
      ASSERT_TRUE(res.ok()) << "total=" << total << " need=" << need;
      EXPECT_EQ(interval_sum(*res.deltas, 0, n), total);
      for (Coord d : *res.deltas) EXPECT_GE(d, 2);
      for (const auto& c : cons) {
        EXPECT_GE(interval_sum(*res.deltas, c.begin, c.end), c.min_length_nm);
      }
    }
  }
}

}  // namespace
}  // namespace cp::legalize
