#include "legalize/legalizer.h"

#include <gtest/gtest.h>

#include "dataset/builder.h"
#include "util/rng.h"

namespace cp::legalize {
namespace {

using squish::Topology;

drc::DesignRules test_rules() {
  drc::DesignRules r;
  r.min_space_nm = 40;
  r.min_width_nm = 40;
  r.min_area_nm2 = 1600;
  r.pitch_nm = 1;
  return r;
}

Topology stripes(int rows, int cols, int period) {
  Topology t(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

TEST(LegalizerTest, LegalizesSimpleStripes) {
  const Legalizer legalizer(test_rules());
  const LegalizeResult res = legalizer.legalize(stripes(8, 8, 2), 800, 800);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(drc::check(*res.pattern, legalizer.rules()).clean());
  EXPECT_EQ(res.pattern->width_nm(), 800);
  EXPECT_EQ(res.pattern->height_nm(), 800);
}

TEST(LegalizerTest, ResultIsDrcCleanAcrossShapes) {
  const Legalizer legalizer(test_rules());
  util::Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    // Random block pattern on an 8x8 coarse grid, upsampled: legal-izable
    // structures with moderate complexity.
    Topology coarse(8, 8);
    for (int r = 1; r < 7; ++r) {
      for (int c = 1; c < 7; ++c) coarse.set(r, c, rng.bernoulli(0.3));
    }
    const Topology t = squish::upsample_nearest(coarse, 2);
    const LegalizeResult res = legalizer.legalize(t, 2000, 2000);
    ASSERT_TRUE(res.ok()) << res.failure->message;
    EXPECT_TRUE(drc::check(*res.pattern, legalizer.rules()).clean());
  }
}

TEST(LegalizerTest, InfeasibleBudgetFails) {
  const Legalizer legalizer(test_rules());
  // 4 interior stripes + spaces need ~ 8*40; budget 200 is impossible.
  const LegalizeResult res = legalizer.legalize(stripes(8, 16, 2), 200, 200);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.failure->axis, 'x');
  EXPECT_GT(res.failure->required_nm, 200);
  EXPECT_FALSE(res.failure->message.empty());
}

TEST(LegalizerTest, FailureRegionIsMeaningful) {
  const Legalizer legalizer(test_rules());
  const LegalizeResult res = legalizer.legalize(stripes(8, 16, 2), 200, 2000);
  ASSERT_FALSE(res.ok());
  EXPECT_LE(res.failure->col0, res.failure->col1);
  EXPECT_GE(res.failure->col1 - res.failure->col0, 1);
}

TEST(LegalizerTest, EmptyTopologyFails) {
  const Legalizer legalizer(test_rules());
  EXPECT_FALSE(legalizer.legalize(Topology(), 100, 100).ok());
}

TEST(LegalizerTest, AllEmptyCellsLegalizes) {
  const Legalizer legalizer(test_rules());
  const LegalizeResult res = legalizer.legalize(Topology(4, 4), 400, 400);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(drc::check(*res.pattern, legalizer.rules()).clean());
}

TEST(LegalizerTest, AreaRepairGrowsSmallShapes) {
  // One interior 1-cell shape; width constraints force >= 40x40 = 1600,
  // and a stricter area rule forces the repair loop to stretch further.
  drc::DesignRules r = test_rules();
  r.min_area_nm2 = 3200;
  const Legalizer legalizer(r);
  Topology t(3, 3);
  t.set(1, 1, 1);
  const LegalizeResult res = legalizer.legalize(t, 1000, 1000);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(drc::check(*res.pattern, r).clean());
  // The shape cell area must now meet the rule.
  EXPECT_GE(res.pattern->dx[1] * res.pattern->dy[1], 3200);
}

TEST(LegalizerTest, RequiredDiagnosticsMatchSolvability) {
  const Legalizer legalizer(test_rules());
  const Topology t = stripes(8, 16, 2);
  const geometry::Coord need_w = legalizer.required_width_nm(t);
  const geometry::Coord need_h = legalizer.required_height_nm(t);
  EXPECT_TRUE(legalizer.legalize(t, need_w, std::max<geometry::Coord>(need_h, 16)).ok());
  EXPECT_FALSE(legalizer.legalize(t, need_w - 1, std::max<geometry::Coord>(need_h, 16)).ok());
}

TEST(LegalizerTest, RealDatasetClipsLegalize) {
  // End-to-end: clips produced by the dataset builder must legalize at their
  // native physical size under their own style rules.
  for (int style = 0; style < 2; ++style) {
    dataset::DatasetConfig dc;
    dc.style = style;
    dc.count = 12;
    dc.seed = 77 + style;
    const dataset::Dataset ds = dataset::build_dataset(dc);
    const Legalizer legalizer(drc::rules_for_style(dataset::style_name(style)));
    for (const Topology& t : ds.topologies) {
      const LegalizeResult res = legalizer.legalize(t, dc.window_nm, dc.window_nm);
      ASSERT_TRUE(res.ok()) << "style " << style << ": " << res.failure->message;
      EXPECT_TRUE(drc::check(*res.pattern, legalizer.rules()).clean());
    }
  }
}

class LegalizerBudgetSweep : public ::testing::TestWithParam<int> {};

TEST_P(LegalizerBudgetSweep, MonotoneInBudget) {
  // Property: if a budget W legalizes, every larger budget must too.
  const Legalizer legalizer(test_rules());
  const Topology t = stripes(6, GetParam(), 2);
  const geometry::Coord need = legalizer.required_width_nm(t);
  const geometry::Coord h = std::max<geometry::Coord>(legalizer.required_height_nm(t), 6);
  EXPECT_FALSE(legalizer.legalize(t, need - 1, h).ok());
  for (geometry::Coord w : {need, need + 100, need * 2}) {
    EXPECT_TRUE(legalizer.legalize(t, w, h).ok()) << "w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LegalizerBudgetSweep, ::testing::Values(4, 8, 12, 20));

}  // namespace
}  // namespace cp::legalize
