// Corrupted-input robustness of the GDSII reader (docs/ROBUSTNESS.md): a
// truncated, bit-flipped or zero-filled file must always surface as a clean
// std::runtime_error — never a crash, hang, or silently wrong library.
// Runs under ASan/UBSan via the CHATPATTERN_ASAN/UBSAN build options.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "io/gds.h"
#include "util/fault.h"
#include "util/fs.h"

namespace cp::io {
namespace {

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

/// A small two-structure library with several boundaries to corrupt.
std::string write_fixture(const char* name) {
  GdsLibrary lib;
  lib.name = "CORRUPTION_FIXTURE";
  for (int s = 0; s < 2; ++s) {
    GdsStructure str;
    str.name = "PAT" + std::to_string(s);
    str.layer = 1 + s;
    for (int i = 0; i < 3; ++i) {
      str.rects.push_back({i * 100, s * 50, i * 100 + 60, s * 50 + 40});
    }
    lib.structures.push_back(std::move(str));
  }
  const std::string path = temp_path(name);
  write_gds(path, lib);
  return path;
}

void overwrite(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// The reader contract under corruption: either a clean parse (corruption
/// hit a benign spot) or std::runtime_error. Anything else fails the test.
void expect_clean_failure_or_parse(const std::string& path, const std::string& what) {
  try {
    const GdsLibrary lib = read_gds(path);
    (void)lib;
  } catch (const std::runtime_error&) {
    // expected failure mode
  } catch (...) {
    FAIL() << what << ": escaped with a non-runtime_error exception";
  }
}

TEST(GdsCorruptTest, RoundTripBaseline) {
  const std::string path = write_fixture("corrupt_base.gds");
  const GdsLibrary lib = read_gds(path);
  EXPECT_EQ(lib.name, "CORRUPTION_FIXTURE");
  ASSERT_EQ(lib.structures.size(), 2u);
  EXPECT_EQ(lib.structures[0].rects.size(), 3u);
  std::remove(path.c_str());
}

TEST(GdsCorruptTest, TruncationAtEveryPrefixLength) {
  const std::string path = write_fixture("corrupt_trunc.gds");
  const std::string original = util::read_file(path);
  const std::string victim = temp_path("corrupt_trunc_victim.gds");
  // Every prefix (stepping 3 to keep runtime sane) must fail cleanly: the
  // CRC trailer is gone, so this exercises the raw record-parser guards.
  for (std::size_t len = 0; len + 1 < original.size(); len += 3) {
    overwrite(victim, original.substr(0, len));
    expect_clean_failure_or_parse(victim, "truncate to " + std::to_string(len));
  }
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(GdsCorruptTest, BitFlipAtEveryByte) {
  const std::string path = write_fixture("corrupt_flip.gds");
  const std::string original = util::read_file(path);
  const std::string victim = temp_path("corrupt_flip_victim.gds");
  long long checksum_catches = 0;
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    std::string mutated = original;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x20);
    overwrite(victim, mutated);
    try {
      (void)read_gds(victim);
    } catch (const std::runtime_error& e) {
      if (std::string(e.what()).find("checksum") != std::string::npos) ++checksum_catches;
    } catch (...) {
      FAIL() << "bit flip at " << pos << " escaped with a non-runtime_error exception";
    }
  }
  // Most payload flips must be caught by the CRC trailer specifically.
  EXPECT_GT(checksum_catches, static_cast<long long>(original.size() / 2));
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(GdsCorruptTest, ZeroFilledRegions) {
  const std::string path = write_fixture("corrupt_zero.gds");
  const std::string original = util::read_file(path);
  const std::string victim = temp_path("corrupt_zero_victim.gds");
  for (std::size_t start = 0; start + 8 <= original.size(); start += 8) {
    std::string mutated = original;
    for (std::size_t i = start; i < start + 8; ++i) mutated[i] = '\0';
    overwrite(victim, mutated);
    expect_clean_failure_or_parse(victim, "zero-fill at " + std::to_string(start));
  }
  // Fully zeroed file of the original size.
  overwrite(victim, std::string(original.size(), '\0'));
  expect_clean_failure_or_parse(victim, "all zeros");
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(GdsCorruptTest, DeclaredLengthBeyondFileEnd) {
  const std::string path = write_fixture("corrupt_len.gds");
  std::string data = util::read_file(path);
  util::strip_crc_trailer(data, "test");
  // Inflate the first record's big-endian length field far past EOF.
  data[0] = '\x7f';
  data[1] = '\x7f';
  const std::string victim = temp_path("corrupt_len_victim.gds");
  overwrite(victim, data);
  EXPECT_THROW((void)read_gds(victim), std::runtime_error);
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(GdsCorruptTest, InjectedReadAndWriteFaults) {
  const std::string path = write_fixture("corrupt_fault.gds");
  util::fault::configure("gds/read=once:1");
  EXPECT_THROW((void)read_gds(path), util::fault::FaultInjected);
  util::fault::configure("gds/write=once:1");
  EXPECT_THROW(write_gds(path, GdsLibrary{}), util::fault::FaultInjected);
  util::fault::clear();
  // The failed write must not have damaged the existing file.
  EXPECT_NO_THROW((void)read_gds(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cp::io
