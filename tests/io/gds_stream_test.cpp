// Streaming GDSII reader (io/gds_stream.h): record-cursor behaviour,
// bounded-buffer operation, and — the load-bearing contract — structure-level
// parity with the whole-file read_gds on everything write_gds produces,
// including the writer -> stream-reader -> writer round trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "io/gds.h"
#include "io/gds_records.h"
#include "io/gds_stream.h"
#include "util/fs.h"

namespace cp::io {
namespace {

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

GdsLibrary make_library(int structures, int rects_per) {
  GdsLibrary lib;
  lib.name = "STREAM_FIXTURE";
  for (int s = 0; s < structures; ++s) {
    GdsStructure str;
    str.name = "CELL" + std::to_string(s);
    str.layer = 1 + (s % 3);
    for (int i = 0; i < rects_per; ++i) {
      const geometry::Coord x = i * 200 + s * 37;
      const geometry::Coord y = (i % 5) * 150;
      str.rects.push_back({x, y, x + 120, y + 90});
    }
    lib.structures.push_back(std::move(str));
  }
  return lib;
}

/// Rebuild a GdsLibrary through the streaming interface.
GdsLibrary stream_collect(const std::string& path, StreamStats* stats_out = nullptr) {
  GdsLibrary lib;
  const StreamStats stats =
      stream_gds_structures(path, [&](GdsStructure&& s) { lib.structures.push_back(std::move(s)); });
  lib.name = stats.library_name;
  lib.dbu_per_user_unit = stats.dbu_per_user_unit;
  lib.dbu_in_meter = stats.dbu_in_meter;
  if (stats_out != nullptr) *stats_out = stats;
  return lib;
}

void expect_equal_libraries(const GdsLibrary& a, const GdsLibrary& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_DOUBLE_EQ(a.dbu_per_user_unit, b.dbu_per_user_unit);
  EXPECT_DOUBLE_EQ(a.dbu_in_meter, b.dbu_in_meter);
  ASSERT_EQ(a.structures.size(), b.structures.size());
  for (std::size_t i = 0; i < a.structures.size(); ++i) {
    EXPECT_EQ(a.structures[i].name, b.structures[i].name);
    EXPECT_EQ(a.structures[i].layer, b.structures[i].layer);
    EXPECT_EQ(a.structures[i].datatype, b.structures[i].datatype);
    EXPECT_EQ(a.structures[i].rects, b.structures[i].rects);
  }
}

TEST(GdsStreamTest, RecordCursorYieldsOffsetsInOrder) {
  const std::string path = temp_path("stream_cursor.gds");
  write_gds(path, make_library(2, 3));

  GdsStreamReader reader(path);
  EXPECT_TRUE(reader.has_trailer());
  StreamRecord rec;
  std::uint64_t last_offset = 0;
  bool first = true;
  std::uint16_t first_id = 0, last_id = 0;
  while (reader.next(rec)) {
    if (first) {
      EXPECT_EQ(rec.offset, 0u);
      first_id = rec.id;
      first = false;
    } else {
      EXPECT_GT(rec.offset, last_offset);
    }
    last_offset = rec.offset;
    last_id = rec.id;
  }
  EXPECT_EQ(first_id, kRecHeader);
  EXPECT_EQ(last_id, kRecEndLib);
  EXPECT_NO_THROW(reader.finish());
  EXPECT_GT(reader.records_read(), 8);
  std::remove(path.c_str());
}

TEST(GdsStreamTest, ParityWithReadGds) {
  const std::string path = temp_path("stream_parity.gds");
  write_gds(path, make_library(5, 24));

  const GdsLibrary whole = read_gds(path);
  StreamStats stats;
  const GdsLibrary streamed = stream_collect(path, &stats);
  expect_equal_libraries(whole, streamed);
  EXPECT_EQ(stats.structures, 5);
  EXPECT_GT(stats.bytes, 0u);
  std::remove(path.c_str());
}

TEST(GdsStreamTest, ParityWithTinyBuffer) {
  // A buffer far smaller than the file forces many refills with record
  // payloads spanning buffer boundaries; the payload bytes (and the
  // incremental CRC) must be unaffected.
  const std::string path = temp_path("stream_tinybuf.gds");
  write_gds(path, make_library(3, 40));

  GdsStreamReader reader(path, /*buffer_bytes=*/1);  // clamped to the 512-byte floor
  StreamRecord rec;
  long long records = 0;
  while (reader.next(rec)) ++records;
  EXPECT_NO_THROW(reader.finish());

  const GdsLibrary whole = read_gds(path);
  const GdsLibrary streamed = stream_collect(path);
  expect_equal_libraries(whole, streamed);
  std::remove(path.c_str());
}

TEST(GdsStreamTest, ForeignFileWithoutTrailerStreams) {
  const std::string path = temp_path("stream_foreign.gds");
  write_gds(path, make_library(2, 4));
  std::string data = util::read_file(path);
  ASSERT_TRUE(util::strip_crc_trailer(data, "test"));
  util::atomic_write_file(path, data);  // plain write: no trailer appended

  GdsStreamReader reader(path);
  EXPECT_FALSE(reader.has_trailer());
  const GdsLibrary whole = read_gds(path);
  const GdsLibrary streamed = stream_collect(path);
  expect_equal_libraries(whole, streamed);
  std::remove(path.c_str());
}

TEST(GdsStreamTest, WriterStreamWriterRoundTrip) {
  // write -> stream -> write again: the re-written file must read back (via
  // read_gds) identical to the original in every structure.
  const std::string path = temp_path("stream_round1.gds");
  const std::string path2 = temp_path("stream_round2.gds");
  write_gds(path, make_library(4, 10));

  GdsLibrary streamed = stream_collect(path);
  write_gds(path2, streamed);
  expect_equal_libraries(read_gds(path), read_gds(path2));
  // Identical input -> byte-identical re-encoding.
  EXPECT_EQ(util::read_file(path), util::read_file(path2));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(GdsStreamTest, EmptyLibraryAndEmptyStructures) {
  const std::string path = temp_path("stream_empty.gds");
  GdsLibrary lib;
  lib.name = "EMPTY";
  lib.structures.push_back(GdsStructure{});
  lib.structures.back().name = "NOTHING";
  write_gds(path, lib);
  const GdsLibrary streamed = stream_collect(path);
  expect_equal_libraries(read_gds(path), streamed);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cp::io
