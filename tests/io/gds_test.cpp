#include "io/gds.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "squish/squish.h"
#include "util/rng.h"

namespace cp::io {
namespace {

using geometry::Rect;

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

std::vector<Rect> canon(std::vector<Rect> rects) {
  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    return std::tie(a.y0, a.x0, a.y1, a.x1) < std::tie(b.y0, b.x0, b.y1, b.x1);
  });
  return rects;
}

TEST(GdsTest, WriteReadRoundTrip) {
  GdsLibrary lib;
  lib.name = "TESTLIB";
  GdsStructure s1;
  s1.name = "PATTERN_0";
  s1.layer = 7;
  s1.datatype = 2;
  s1.rects = {{0, 0, 100, 50}, {200, 30, 260, 400}};
  GdsStructure s2;
  s2.name = "PATTERN_1";
  s2.rects = {{-40, -40, 0, 0}};
  lib.structures = {s1, s2};

  const std::string path = temp_path("roundtrip.gds");
  write_gds(path, lib);
  const GdsLibrary back = read_gds(path);
  EXPECT_EQ(back.name, "TESTLIB");
  ASSERT_EQ(back.structures.size(), 2u);
  EXPECT_EQ(back.structures[0].name, "PATTERN_0");
  EXPECT_EQ(back.structures[0].layer, 7);
  EXPECT_EQ(back.structures[0].datatype, 2);
  EXPECT_EQ(canon(back.structures[0].rects), canon(s1.rects));
  EXPECT_EQ(canon(back.structures[1].rects), canon(s2.rects));
}

TEST(GdsTest, UnitsSurviveExcess64Encoding) {
  GdsLibrary lib;
  const std::string path = temp_path("units.gds");
  write_gds(path, lib);
  const GdsLibrary back = read_gds(path);
  EXPECT_NEAR(back.dbu_in_meter, 1e-9, 1e-18);
  EXPECT_NEAR(back.dbu_per_user_unit, 1e-3, 1e-12);
}

TEST(GdsTest, DeterministicBytes) {
  GdsLibrary lib;
  lib.structures.push_back(GdsStructure{"A", {{0, 0, 10, 10}}, 1, 0});
  const std::string p1 = temp_path("det1.gds");
  const std::string p2 = temp_path("det2.gds");
  write_gds(p1, lib);
  write_gds(p2, lib);
  std::ifstream a(p1, std::ios::binary), b(p2, std::ios::binary);
  const std::string sa((std::istreambuf_iterator<char>(a)), std::istreambuf_iterator<char>());
  const std::string sb((std::istreambuf_iterator<char>(b)), std::istreambuf_iterator<char>());
  EXPECT_EQ(sa, sb);
  EXPECT_GT(sa.size(), 60u);
}

TEST(GdsTest, RectilinearLShapeBoundaryDecomposed) {
  // Hand-craft a library whose BOUNDARY is an L-shaped loop (as another tool
  // would write it) by monkey-patching: write a rect library, then read a
  // manually assembled L via the public API using a loop payload.
  // Simpler: the writer emits rects; to test the loop decomposition, write
  // an L as two rects, read back, re-write *as one polygon* is not exposed —
  // so test loop_to_rects indirectly by checking area equivalence of a
  // merged read. Write two touching rects forming an L:
  GdsLibrary lib;
  GdsStructure s;
  s.name = "L";
  s.rects = {{0, 0, 30, 10}, {0, 10, 10, 30}};
  lib.structures = {s};
  const std::string path = temp_path("lshape.gds");
  write_gds(path, lib);
  const GdsLibrary back = read_gds(path);
  geometry::Coord area = 0;
  for (const Rect& r : back.structures[0].rects) area += r.area();
  EXPECT_EQ(area, 300 + 200);
}

TEST(GdsTest, ReadRejectsGarbage) {
  const std::string path = temp_path("garbage.gds");
  std::ofstream(path) << "this is not a gds file at all, definitely";
  EXPECT_THROW(read_gds(path), std::runtime_error);
  EXPECT_THROW(read_gds(temp_path("missing-file.gds")), std::runtime_error);
}

TEST(GdsTest, TruncatedFileRejected) {
  GdsLibrary lib;
  lib.structures.push_back(GdsStructure{"A", {{0, 0, 10, 10}}, 1, 0});
  const std::string path = temp_path("trunc.gds");
  write_gds(path, lib);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::ofstream(temp_path("trunc2.gds"), std::ios::binary)
      << bytes.substr(0, bytes.size() - 6);
  EXPECT_THROW(read_gds(temp_path("trunc2.gds")), std::runtime_error);
}

TEST(GdsTest, ManyPatternsRoundTrip) {
  util::Rng rng(4);
  GdsLibrary lib;
  for (int i = 0; i < 20; ++i) {
    GdsStructure s;
    s.name = "P" + std::to_string(i);
    for (int j = 0; j < 5; ++j) {
      const geometry::Coord x = rng.uniform_int(0, 50) * 10;
      const geometry::Coord y = rng.uniform_int(0, 50) * 10;
      s.rects.push_back(Rect{x, y, x + 40, y + 80});
    }
    lib.structures.push_back(std::move(s));
  }
  const std::string path = temp_path("many.gds");
  write_gds(path, lib);
  const GdsLibrary back = read_gds(path);
  ASSERT_EQ(back.structures.size(), 20u);
  geometry::Coord area_in = 0, area_out = 0;
  for (const auto& s : lib.structures) {
    for (const auto& r : s.rects) area_in += r.area();
  }
  for (const auto& s : back.structures) {
    for (const auto& r : s.rects) area_out += r.area();
  }
  // Overlapping rects in a structure merge on read; the union area is
  // bounded by the sum.
  EXPECT_LE(area_out, area_in);
  EXPECT_GT(area_out, 0);
}

}  // namespace
}  // namespace cp::io
