// Corrupted-input robustness of the *streaming* GDSII reader
// (docs/ROBUSTNESS.md): truncation mid-record, bit-flipped headers and
// payloads, zero-filled tails and injected faults must all surface as a
// clean std::runtime_error — never UB, a hang, or a silently wrong library.
// Runs under ASan/UBSan via the CHATPATTERN_ASAN/UBSAN build options.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "io/gds.h"
#include "io/gds_stream.h"
#include "util/fault.h"
#include "util/fs.h"

namespace cp::io {
namespace {

std::string temp_path(const char* name) { return ::testing::TempDir() + "/" + name; }

std::string write_fixture(const char* name) {
  GdsLibrary lib;
  lib.name = "STREAM_CORRUPTION_FIXTURE";
  for (int s = 0; s < 2; ++s) {
    GdsStructure str;
    str.name = "PAT" + std::to_string(s);
    str.layer = 1 + s;
    for (int i = 0; i < 3; ++i) {
      str.rects.push_back({i * 100, s * 50, i * 100 + 60, s * 50 + 40});
    }
    lib.structures.push_back(std::move(str));
  }
  const std::string path = temp_path(name);
  write_gds(path, lib);
  return path;
}

void overwrite(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

long long stream_all(const std::string& path) {
  long long structures = 0;
  (void)stream_gds_structures(path, [&](GdsStructure&&) { ++structures; });
  return structures;
}

/// The streaming contract under corruption: either a clean parse (the
/// corruption hit a benign spot) or std::runtime_error. Anything else —
/// another exception type, a crash, a hang — fails the test.
void expect_clean_failure_or_parse(const std::string& path, const std::string& what) {
  try {
    (void)stream_all(path);
  } catch (const std::runtime_error&) {
    // expected failure mode
  } catch (...) {
    FAIL() << what << ": escaped with a non-runtime_error exception";
  }
}

TEST(GdsStreamCorruptTest, TruncationAtEveryPrefixLength) {
  const std::string path = write_fixture("scorrupt_trunc.gds");
  const std::string original = util::read_file(path);
  const std::string victim = temp_path("scorrupt_trunc_victim.gds");
  for (std::size_t len = 0; len + 1 < original.size(); len += 3) {
    overwrite(victim, original.substr(0, len));
    expect_clean_failure_or_parse(victim, "truncate to " + std::to_string(len));
  }
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(GdsStreamCorruptTest, BitFlipAtEveryByteNeverSilent) {
  const std::string path = write_fixture("scorrupt_flip.gds");
  const std::string original = util::read_file(path);
  const std::string victim = temp_path("scorrupt_flip_victim.gds");
  long long checksum_catches = 0, any_catches = 0;
  for (std::size_t pos = 0; pos < original.size(); ++pos) {
    std::string mutated = original;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x20);
    overwrite(victim, mutated);
    try {
      (void)stream_all(victim);
    } catch (const std::runtime_error& e) {
      ++any_catches;
      if (std::string(e.what()).find("checksum") != std::string::npos) ++checksum_catches;
    } catch (...) {
      FAIL() << "bit flip at " << pos << " escaped with a non-runtime_error exception";
    }
  }
  // The CRC trailer is verified after the (incremental) streaming parse, so
  // structurally valid flips must still be caught at finish(); every single
  // flip in a trailer-carrying file is detectable one way or the other.
  EXPECT_EQ(any_catches, static_cast<long long>(original.size()));
  EXPECT_GT(checksum_catches, 0);
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(GdsStreamCorruptTest, ZeroFilledRegionsAndTails) {
  const std::string path = write_fixture("scorrupt_zero.gds");
  const std::string original = util::read_file(path);
  const std::string victim = temp_path("scorrupt_zero_victim.gds");
  for (std::size_t start = 0; start + 8 <= original.size(); start += 8) {
    std::string mutated = original;
    for (std::size_t i = start; i < start + 8; ++i) mutated[i] = '\0';
    overwrite(victim, mutated);
    expect_clean_failure_or_parse(victim, "zero-fill at " + std::to_string(start));
  }
  // Zero-filled tails of every length (a torn tape write).
  for (std::size_t keep = 0; keep < original.size(); keep += 7) {
    std::string mutated = original.substr(0, keep);
    mutated.resize(original.size(), '\0');
    overwrite(victim, mutated);
    expect_clean_failure_or_parse(victim, "zero tail from " + std::to_string(keep));
  }
  overwrite(victim, std::string(original.size(), '\0'));
  expect_clean_failure_or_parse(victim, "all zeros");
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(GdsStreamCorruptTest, DeclaredLengthBeyondFileEndNamesTheRecord) {
  const std::string path = write_fixture("scorrupt_len.gds");
  std::string data = util::read_file(path);
  util::strip_crc_trailer(data, "test");
  data[0] = '\x7f';  // inflate the first record's big-endian length
  data[1] = '\x7f';
  const std::string victim = temp_path("scorrupt_len_victim.gds");
  overwrite(victim, data);
  try {
    (void)stream_all(victim);
    FAIL() << "inflated record length parsed";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("at byte"), std::string::npos) << msg;
    EXPECT_NE(msg.find("HEADER"), std::string::npos) << msg;
  }
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(GdsStreamCorruptTest, TrailingGarbageAfterEndlib) {
  const std::string path = write_fixture("scorrupt_tail.gds");
  std::string data = util::read_file(path);
  util::strip_crc_trailer(data, "test");
  data += "leftover";
  const std::string victim = temp_path("scorrupt_tail_victim.gds");
  overwrite(victim, data);
  EXPECT_THROW((void)stream_all(victim), std::runtime_error);
  std::remove(path.c_str());
  std::remove(victim.c_str());
}

TEST(GdsStreamCorruptTest, InjectedStreamFault) {
  const std::string path = write_fixture("scorrupt_fault.gds");
  util::fault::configure("gds/stream=once:1");
  EXPECT_THROW((void)stream_all(path), util::fault::FaultInjected);
  util::fault::clear();
  EXPECT_EQ(stream_all(path), 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cp::io
