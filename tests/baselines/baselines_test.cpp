#include <gtest/gtest.h>

#include "baselines/cae.h"
#include "baselines/concat.h"
#include "baselines/layoutransformer.h"
#include "baselines/legalgan.h"
#include "drc/checker.h"

namespace cp::baselines {
namespace {

squish::Topology stripes(int n, int period) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

std::vector<squish::Topology> stripe_data(int n) {
  std::vector<squish::Topology> data;
  for (int p = 2; p <= 5; ++p) data.push_back(stripes(n, p));
  return data;
}

TEST(CaeTest, ReconstructsTrainingDataApproximately) {
  util::Rng rng(1);
  CaeBaseline cae(16, 8, rng);
  const auto data = stripe_data(16);
  cae.train(data, 800, 0.05f);
  // Generation with zero latent noise decodes a training latent: should be
  // close to some training pattern.
  const squish::Topology g = cae.generate(rng, 0.0f);
  int best_diff = 1 << 30;
  for (const auto& t : data) {
    int diff = 0;
    for (int r = 0; r < t.rows(); ++r) {
      for (int c = 0; c < t.cols(); ++c) diff += t.at(r, c) != g.at(r, c);
    }
    best_diff = std::min(best_diff, diff);
  }
  EXPECT_LT(best_diff, static_cast<int>(g.size()) / 4);
}

TEST(CaeTest, GenerateBeforeTrainThrows) {
  util::Rng rng(1);
  CaeBaseline cae(8, 4, rng);
  EXPECT_THROW(cae.generate(rng), std::runtime_error);
}

TEST(CaeTest, TrainRejectsEmptyData) {
  util::Rng rng(1);
  CaeBaseline cae(8, 4, rng);
  EXPECT_THROW(cae.train({}, 10, 0.1f), std::invalid_argument);
}

TEST(VcaeTest, VariationalSamplingIsMoreDiverse) {
  util::Rng rng(2);
  VcaeBaseline vcae(16, 6, rng);
  const auto data = stripe_data(16);
  vcae.train(data, 600, 0.05f);
  vcae.fit_latent_distribution();
  // Draws must not all be identical.
  const squish::Topology a = vcae.generate_variational(rng);
  bool any_diff = false;
  for (int i = 0; i < 8 && !any_diff; ++i) {
    any_diff = !(vcae.generate_variational(rng) == a);
  }
  EXPECT_TRUE(any_diff);
}

TEST(VcaeTest, FitBeforeTrainThrows) {
  util::Rng rng(2);
  VcaeBaseline vcae(8, 4, rng);
  EXPECT_THROW(vcae.fit_latent_distribution(), std::runtime_error);
  EXPECT_THROW(vcae.generate_variational(rng), std::runtime_error);
}

TEST(LegalGanTest, RemovesIsolatedSpeckle) {
  squish::Topology t = stripes(16, 4);
  t.set(8, 1, t.at(8, 1) ? 0 : 1);  // lone flip inside a stripe region
  LegalGanConfig cfg;
  const squish::Topology cleaned = legalgan_cleanup(t, cfg);
  // The cleaned pattern should match the unperturbed stripes better.
  const squish::Topology ref = legalgan_cleanup(stripes(16, 4), cfg);
  int diff = 0;
  for (int r = 0; r < ref.rows(); ++r) {
    for (int c = 0; c < ref.cols(); ++c) diff += ref.at(r, c) != cleaned.at(r, c);
  }
  EXPECT_LE(diff, 2);
}

TEST(LegalGanTest, RemovesShortInteriorRuns) {
  squish::Topology t(8, 8);
  t.set(4, 4, 1);  // single-cell interior shape
  LegalGanConfig cfg;
  cfg.min_run_cells = 2;
  cfg.majority_first = false;
  const squish::Topology cleaned = legalgan_cleanup(t, cfg);
  EXPECT_EQ(cleaned.popcount(), 0u);
}

TEST(LegalGanTest, PreservesLargeStructures) {
  const squish::Topology t = stripes(16, 4);
  LegalGanConfig cfg;
  cfg.majority_first = false;
  EXPECT_EQ(legalgan_cleanup(t, cfg), t);
}

TEST(LayoutTransformerTest, LearnsRunStatistics) {
  LayoutTransformerBaseline model;
  model.fit(stripe_data(32));
  util::Rng rng(3);
  const squish::Topology g = model.generate(32, 32, rng);
  EXPECT_EQ(g.rows(), 32);
  // Density should be near the training density (0.5 for stripes).
  EXPECT_NEAR(g.density(), 0.5, 0.15);
}

TEST(LayoutTransformerTest, UntrainedFallsBackToPrior) {
  LayoutTransformerBaseline model;
  util::Rng rng(4);
  const squish::Topology g = model.generate(16, 16, rng);
  EXPECT_NEAR(g.density(), 0.5, 0.25);
}

TEST(ConcatTest, GridDimsAndStructure) {
  squish::SquishPattern tile;
  tile.topology = squish::Topology(2, 2);
  tile.topology.set(0, 0, 1);
  tile.dx = {50, 50};
  tile.dy = {50, 50};
  const auto stitched = concat_grid({tile, tile, tile, tile}, 2, 2);
  EXPECT_EQ(stitched.width_nm(), 200);
  EXPECT_EQ(stitched.height_nm(), 200);
  // Four copies of the corner shape.
  const auto rects = squish::unsquish(stitched);
  EXPECT_EQ(rects.size(), 4u);
}

TEST(ConcatTest, SeamViolationSurfaces) {
  // Each tile is individually DRC-clean (its shape is 10 nm from the tile
  // edge — border-exempt inside the tile), but stitching A's right shape
  // against B's left shape leaves a 20 nm gap at the seam, below min_space.
  squish::SquishPattern a;
  a.topology = squish::Topology(3, 3);
  a.topology.set(1, 1, 1);
  a.dx = {140, 50, 10};
  a.dy = {60, 80, 60};
  squish::SquishPattern b;
  b.topology = squish::Topology(3, 3);
  b.topology.set(1, 1, 1);
  b.dx = {10, 50, 140};
  b.dy = {60, 80, 60};
  drc::DesignRules rules;
  rules.min_space_nm = 40;
  rules.min_width_nm = 40;
  rules.min_area_nm2 = 100;
  EXPECT_TRUE(drc::check(a, rules).clean());
  EXPECT_TRUE(drc::check(b, rules).clean());
  const auto stitched = concat_grid({a, b}, 1, 2);
  const auto report = drc::check(stitched, rules);
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].kind, drc::ViolationKind::kSpace);
  EXPECT_EQ(report.violations[0].actual_nm, 20);
}

TEST(ConcatTest, MismatchedTilesThrow) {
  squish::SquishPattern a;
  a.topology = squish::Topology(1, 1);
  a.dx = {100};
  a.dy = {100};
  squish::SquishPattern b = a;
  b.dx = {200};
  EXPECT_THROW(concat_grid({a, b}, 1, 2), std::invalid_argument);
  EXPECT_THROW(concat_grid({a}, 1, 2), std::invalid_argument);
}

}  // namespace
}  // namespace cp::baselines
