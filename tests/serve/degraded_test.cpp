// Degraded-mode serving (docs/ROBUSTNESS.md): injected sampling and
// legalization faults must never kill the dispatcher or drop a request —
// transient faults are absorbed bit-identically by retries, total primary
// failure falls back to the degraded generator, and degraded payloads are
// never cached.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "serve/server.h"
#include "tests/serve/serve_fixture.h"
#include "util/fault.h"

namespace cp::serve {
namespace {

class DegradedTest : public testing::ServeFixture {
 protected:
  void TearDown() override { util::fault::clear(); }

  ServerConfig serial_config() const {
    ServerConfig config;
    config.workers = 1;  // fault call counters are process-global: keep the
                         // firing schedule exactly reproducible
    return config;
  }

  /// Replay `seeds` one request at a time (so fault call indices do not
  /// depend on batching) and return each result.
  std::vector<GenerationResult> replay(Server& server, const std::vector<std::uint64_t>& seeds) {
    std::vector<GenerationResult> results;
    for (std::uint64_t seed : seeds) {
      Server::Submitted s = server.submit(make_request("r" + std::to_string(seed), seed));
      results.push_back(s.result.get());
    }
    return results;
  }
};

TEST_F(DegradedTest, TransientSamplingFaultsAreBitIdenticallyAbsorbed) {
  const std::vector<std::uint64_t> seeds = {10, 11, 12, 13, 14, 15};

  std::vector<std::uint64_t> baseline;
  {
    Server server(sampler_, legalizers(), serial_config());
    for (const GenerationResult& r : replay(server, seeds)) {
      ASSERT_TRUE(r.ok());
      baseline.push_back(r.library_hash());
    }
    server.shutdown();
  }

  // Every third primary attempt throws; the default 3-attempt retry re-forks
  // the identical Rng stream, so payloads must not change at all.
  util::fault::configure("denoiser/infer=every:3");
  Server server(sampler_, legalizers(), serial_config());
  const std::vector<GenerationResult> results = replay(server, seeds);
  server.shutdown();
  ASSERT_GT(util::fault::fired_count("denoiser/infer"), 0);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "seed " << seeds[i];
    EXPECT_FALSE(results[i].degraded) << "transient faults must never reach the fallback";
    EXPECT_EQ(results[i].library_hash(), baseline[i]) << "seed " << seeds[i];
  }
}

TEST_F(DegradedTest, TotalPrimaryFailureServesDegradedFromFallback) {
  ServerConfig config = serial_config();
  config.fallback = &sampler_.fine_sampler();
  util::fault::configure("denoiser/infer=every:1");

  Server server(sampler_, legalizers(), config);
  const std::vector<GenerationResult> results = replay(server, {20, 21, 22});
  server.shutdown();
  for (const GenerationResult& r : results) {
    ASSERT_TRUE(r.ok()) << r.reason;
    EXPECT_TRUE(r.degraded) << "every sample came from the fallback";
    EXPECT_GT(r.delivered(), 0u);
  }
}

TEST_F(DegradedTest, DegradedPayloadsAreNeverCached) {
  ServerConfig config = serial_config();
  config.fallback = &sampler_.fine_sampler();
  Server server(sampler_, legalizers(), config);

  util::fault::configure("denoiser/infer=every:1");
  Server::Submitted first = server.submit(make_request("first", 30));
  const GenerationResult degraded = first.result.get();
  ASSERT_TRUE(degraded.ok());
  ASSERT_TRUE(degraded.degraded);

  // Faults gone: the identical request must be generated fresh by the
  // primary, not served from a cache poisoned with the degraded payload.
  util::fault::clear();
  Server::Submitted second = server.submit(make_request("second", 30));
  const GenerationResult healthy = second.result.get();
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy.cache_hit) << "degraded payloads must not be cached";
  EXPECT_FALSE(healthy.degraded);

  // A healthy result does get cached.
  Server::Submitted third = server.submit(make_request("third", 30));
  const GenerationResult cached = third.result.get();
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_FALSE(cached.degraded);
  EXPECT_EQ(cached.library_hash(), healthy.library_hash());
  server.shutdown();
}

TEST_F(DegradedTest, NoFallbackCompletesIncompleteInsteadOfHanging) {
  util::fault::configure("denoiser/infer=every:1");
  Server server(sampler_, legalizers(), serial_config());  // no fallback
  Server::Submitted s = server.submit(make_request("doomed", 40));
  const GenerationResult r = s.result.get();  // must return, not hang
  server.shutdown();
  EXPECT_EQ(r.status, RequestStatus::kIncomplete);
  EXPECT_EQ(r.delivered(), 0u);
  EXPECT_FALSE(r.degraded);
}

TEST_F(DegradedTest, TransientLegalizationFaultsRetrySameCandidate) {
  const std::vector<std::uint64_t> seeds = {50, 51, 52};
  std::vector<std::uint64_t> baseline;
  {
    Server server(sampler_, legalizers(), serial_config());
    for (const GenerationResult& r : replay(server, seeds)) {
      ASSERT_TRUE(r.ok());
      baseline.push_back(r.library_hash());
    }
    server.shutdown();
  }

  util::fault::configure("legalize/run=every:2");
  Server server(sampler_, legalizers(), serial_config());
  const std::vector<GenerationResult> results = replay(server, seeds);
  server.shutdown();
  ASSERT_GT(util::fault::fired_count("legalize/run"), 0);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "seed " << seeds[i];
    EXPECT_FALSE(results[i].degraded);
    EXPECT_EQ(results[i].library_hash(), baseline[i]) << "seed " << seeds[i];
  }
}

}  // namespace
}  // namespace cp::serve
