// LRU semantics of serve::PatternCache.

#include <gtest/gtest.h>

#include "serve/cache.h"

namespace cp::serve {
namespace {

std::shared_ptr<const GenerationPayload> payload_of(int n) {
  auto p = std::make_shared<GenerationPayload>();
  for (int i = 0; i < n; ++i) p->topologies.emplace_back(2, 2, 1);
  return p;
}

TEST(PatternCache, HitReturnsTheSharedPayload) {
  PatternCache cache(4);
  auto p = payload_of(3);
  cache.insert(7, p);
  auto hit = cache.lookup(7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), p.get());  // pointer share, not a copy
  EXPECT_EQ(hit->size(), 3u);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 0);
}

TEST(PatternCache, MissOnUnknownKey) {
  PatternCache cache(4);
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(PatternCache, EvictsLeastRecentlyUsed) {
  PatternCache cache(2);
  cache.insert(1, payload_of(1));
  cache.insert(2, payload_of(2));
  ASSERT_NE(cache.lookup(1), nullptr);  // refresh 1; now 2 is LRU
  cache.insert(3, payload_of(3));       // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
}

TEST(PatternCache, EvictedPayloadStaysValidForHolders) {
  PatternCache cache(1);
  auto held = cache.lookup(5);
  cache.insert(5, payload_of(4));
  held = cache.lookup(5);
  cache.insert(6, payload_of(1));  // evicts 5
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->size(), 4u);  // the client's shared_ptr keeps it alive
}

TEST(PatternCache, ReinsertRefreshesInsteadOfDuplicating) {
  PatternCache cache(2);
  cache.insert(1, payload_of(1));
  cache.insert(1, payload_of(2));
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.lookup(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 2u);  // the newer payload won
}

TEST(PatternCache, CapacityZeroDisables) {
  PatternCache cache(0);
  cache.insert(1, payload_of(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(1), nullptr);
}

}  // namespace
}  // namespace cp::serve
