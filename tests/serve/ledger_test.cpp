// Accepted-work accounting of serve::RequestLedger: exactly-once
// completion, duplicate detection, and the CRC32-framed journal including
// torn-tail recovery (docs/ROBUSTNESS.md).

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "serve/ledger.h"
#include "util/fs.h"

namespace cp::serve {
namespace {

namespace fs = std::filesystem;

class LedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("cp_ledger_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(LedgerTest, AcceptCompleteBalances) {
  RequestLedger ledger;
  const std::uint64_t a = ledger.accept("r0", 111);
  const std::uint64_t b = ledger.accept("r1", 222);
  EXPECT_NE(a, b);
  EXPECT_EQ(ledger.accepted(), 2);
  EXPECT_EQ(ledger.outstanding(), 2);
  ledger.complete(a, "ok");
  EXPECT_EQ(ledger.outstanding(), 1);
  ASSERT_EQ(ledger.unfinished_ids().size(), 1u);
  EXPECT_EQ(ledger.unfinished_ids()[0], "r1");
  ledger.complete(b, "failed");
  EXPECT_EQ(ledger.completed(), 2);
  EXPECT_EQ(ledger.outstanding(), 0);
  EXPECT_EQ(ledger.double_completes(), 0);
}

TEST_F(LedgerTest, DuplicateAndUnknownCompletesAreCountedNotCorrupting) {
  RequestLedger ledger;
  const std::uint64_t a = ledger.accept("r0", 1);
  ledger.complete(a, "ok");
  ledger.complete(a, "ok");       // duplicate
  ledger.complete(9999, "ok");    // never accepted
  EXPECT_EQ(ledger.completed(), 1);
  EXPECT_EQ(ledger.double_completes(), 2);
  EXPECT_EQ(ledger.outstanding(), 0);
}

TEST_F(LedgerTest, JournalRoundTrips) {
  const std::string journal = path("journal.cpsj");
  {
    RequestLedger ledger(journal);
    EXPECT_TRUE(ledger.journal_error().empty());
    const std::uint64_t a = ledger.accept("alpha", 10);
    ledger.accept("beta", 20);  // never completed
    ledger.complete(a, "ok");
    ledger.flush();
  }
  const RequestLedger::Recovered rec = RequestLedger::load(journal);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_FALSE(rec.torn_tail);
  EXPECT_EQ(rec.accepted, 2);
  EXPECT_EQ(rec.completed, 1);
  ASSERT_EQ(rec.unfinished_ids.size(), 1u);
  EXPECT_EQ(rec.unfinished_ids[0], "beta");
}

TEST_F(LedgerTest, TornTailIsDroppedOnLoad) {
  const std::string journal = path("torn.cpsj");
  {
    RequestLedger ledger(journal);
    const std::uint64_t a = ledger.accept("first", 1);
    ledger.complete(a, "ok");
    ledger.accept("second", 2);
    ledger.flush();
  }
  // Tear mid-record: chop a few bytes off the end, as a crash during the
  // final append would.
  const auto size = fs::file_size(journal);
  ASSERT_GT(size, 4u);
  fs::resize_file(journal, size - 3);

  const RequestLedger::Recovered rec = RequestLedger::load(journal);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_TRUE(rec.torn_tail);
  // The torn record was the acceptance of "second": only the first
  // accept/complete pair survives.
  EXPECT_EQ(rec.accepted, 1);
  EXPECT_EQ(rec.completed, 1);
  EXPECT_TRUE(rec.unfinished_ids.empty());
}

TEST_F(LedgerTest, HugeIdLengthInCrcValidRecordIsSkippedNotRead) {
  // Regression: an Accept record whose id_len field claims ~4GB used to pass
  // the bounds check via unsigned wraparound (21 + 0xFFFFFFFF == 20) and
  // read far past the buffer. The record is CRC-valid on purpose — only the
  // length-vs-payload consistency check can reject it.
  const std::string journal = path("evil.cpsj");
  {
    RequestLedger ledger(journal);  // writes the CPSJ header record
    ledger.flush();
  }
  std::string payload;
  payload.push_back('A');                       // kAccept
  payload.append(8, '\x01');                    // seq
  payload.append(8, '\x02');                    // content hash
  payload.append(4, '\xFF');                    // id_len = 0xFFFFFFFF
  std::string frame;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  frame.append(reinterpret_cast<const char*>(&len), 4);
  frame.append(payload);
  const std::uint32_t crc = util::crc32(payload);
  frame.append(reinterpret_cast<const char*>(&crc), 4);
  std::ofstream(journal, std::ios::binary | std::ios::app) << frame;

  const RequestLedger::Recovered rec = RequestLedger::load(journal);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.accepted, 0);  // the lying record contributes nothing
  EXPECT_TRUE(rec.unfinished_ids.empty());
}

TEST_F(LedgerTest, ForeignFileReportsNotOk) {
  const std::string bogus = path("bogus.cpsj");
  std::ofstream(bogus) << "this is not a ledger journal";
  const RequestLedger::Recovered rec = RequestLedger::load(bogus);
  EXPECT_FALSE(rec.ok);
  EXPECT_FALSE(rec.error.empty());
}

TEST_F(LedgerTest, MissingFileReportsNotOk) {
  EXPECT_FALSE(RequestLedger::load(path("never_written.cpsj")).ok);
}

TEST_F(LedgerTest, UnwritableJournalPathIsNonFatal) {
  RequestLedger ledger(path("no_such_dir") + "/journal.cpsj");
  EXPECT_FALSE(ledger.journal_error().empty());
  // Accounting still works without the audit trail.
  const std::uint64_t a = ledger.accept("r0", 1);
  ledger.complete(a, "ok");
  EXPECT_EQ(ledger.outstanding(), 0);
}

}  // namespace
}  // namespace cp::serve
