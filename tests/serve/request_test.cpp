// Wire-format and content-hash tests for serve::GenerationRequest — the
// NDJSON protocol of chatpattern_serve (docs/SERVING.md).

#include <gtest/gtest.h>

#include "serve/request.h"

namespace cp::serve {
namespace {

GenerationRequest sample_request() {
  GenerationRequest r;
  r.id = "req-1";
  r.style = "Layer-10003";
  r.count = 3;
  r.rows = 64;
  r.cols = 32;
  r.sample_steps = 8;
  r.polish_rounds = 1;
  r.width_nm = 1024;
  r.height_nm = 512;
  r.seed = 42;
  r.legalize = false;
  r.priority = 7;
  r.deadline_ms = 250.0;
  return r;
}

TEST(RequestWire, JsonRoundTripPreservesEveryField) {
  const GenerationRequest r = sample_request();
  const GenerationRequest back = GenerationRequest::from_json(r.to_json());
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.style, r.style);
  EXPECT_EQ(back.count, r.count);
  EXPECT_EQ(back.rows, r.rows);
  EXPECT_EQ(back.cols, r.cols);
  EXPECT_EQ(back.sample_steps, r.sample_steps);
  EXPECT_EQ(back.polish_rounds, r.polish_rounds);
  EXPECT_EQ(back.width_nm, r.width_nm);
  EXPECT_EQ(back.height_nm, r.height_nm);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.legalize, r.legalize);
  EXPECT_EQ(back.priority, r.priority);
  EXPECT_DOUBLE_EQ(back.deadline_ms, r.deadline_ms);
  EXPECT_EQ(back.content_hash(), r.content_hash());
}

TEST(RequestWire, DefaultsSurviveMinimalLine) {
  const ParsedRequest p = parse_request_line(R"({"id":"only-id"})");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.id, "only-id");
  EXPECT_EQ(p.request.style, "Layer-10001");
  EXPECT_EQ(p.request.count, 1);
  EXPECT_TRUE(p.request.legalize);
  EXPECT_EQ(p.request.priority, 1);
}

TEST(RequestWire, MalformedLinesAreRejectedNotThrown) {
  EXPECT_FALSE(parse_request_line("this is not json").ok);
  EXPECT_FALSE(parse_request_line("{\"id\":").ok);
  EXPECT_FALSE(parse_request_line("[1,2,3]").ok);
  const ParsedRequest p = parse_request_line("not json at all");
  EXPECT_FALSE(p.error.empty());
}

TEST(RequestWire, ValidationCatchesBadFields) {
  EXPECT_FALSE(parse_request_line(R"({"style":"Layer-10001"})").ok);  // no id
  EXPECT_FALSE(parse_request_line(R"({"id":"x","style":"Layer-9"})").ok);
  EXPECT_FALSE(parse_request_line(R"({"id":"x","count":0})").ok);
  EXPECT_FALSE(parse_request_line(R"({"id":"x","rows":-4})").ok);
  EXPECT_FALSE(parse_request_line(R"({"id":"x","steps":0})").ok);
}

TEST(RequestHash, CoversContentFieldsOnly) {
  const GenerationRequest base = sample_request();
  // Scheduling fields must NOT change the hash: a high-priority retry of a
  // cached request still hits.
  GenerationRequest sched = base;
  sched.id = "other-id";
  sched.priority = 99;
  sched.deadline_ms = 1.0;
  EXPECT_EQ(sched.content_hash(), base.content_hash());

  // Every content field must change it.
  auto differs = [&](auto mutate) {
    GenerationRequest m = base;
    mutate(m);
    return m.content_hash() != base.content_hash();
  };
  EXPECT_TRUE(differs([](GenerationRequest& m) { m.style = "Layer-10001"; }));
  EXPECT_TRUE(differs([](GenerationRequest& m) { ++m.count; }));
  EXPECT_TRUE(differs([](GenerationRequest& m) { ++m.rows; }));
  EXPECT_TRUE(differs([](GenerationRequest& m) { ++m.cols; }));
  EXPECT_TRUE(differs([](GenerationRequest& m) { ++m.sample_steps; }));
  EXPECT_TRUE(differs([](GenerationRequest& m) { ++m.polish_rounds; }));
  EXPECT_TRUE(differs([](GenerationRequest& m) { ++m.width_nm; }));
  EXPECT_TRUE(differs([](GenerationRequest& m) { ++m.height_nm; }));
  EXPECT_TRUE(differs([](GenerationRequest& m) { ++m.seed; }));
  EXPECT_TRUE(differs([](GenerationRequest& m) { m.legalize = !m.legalize; }));
  // Precision is a content field: an int8 request must never alias a cached
  // fp32 payload (DESIGN.md "Quantized inference").
  EXPECT_TRUE(differs([](GenerationRequest& m) { m.precision = "int8"; }));
}

TEST(RequestWire, PrecisionFieldRoundTripsAndValidates) {
  GenerationRequest r = sample_request();
  EXPECT_EQ(r.precision, "fp32");  // default
  r.precision = "int8";
  const GenerationRequest back = GenerationRequest::from_json(r.to_json());
  EXPECT_EQ(back.precision, "int8");
  EXPECT_EQ(back.content_hash(), r.content_hash());

  const ParsedRequest p = parse_request_line(R"({"id":"q","precision":"int8"})");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.precision, "int8");
  EXPECT_FALSE(parse_request_line(R"({"id":"q","precision":"fp16"})").ok);
}

TEST(RequestWire, ResultJsonCarriesHexLibraryHash) {
  GenerationResult res;
  res.id = "r";
  res.status = RequestStatus::kOk;
  auto payload = std::make_shared<GenerationPayload>();
  payload->topologies.emplace_back(4, 4, 1);
  res.payload = payload;
  const util::Json j = res.to_json();
  EXPECT_EQ(j.at("status").as_string(), "ok");
  const std::string hash = j.at("library_hash").as_string();
  EXPECT_EQ(hash.size(), 16u);  // %016llx
  EXPECT_NE(res.library_hash(), 0u);
}

TEST(RequestWire, BatchKeyGroupsCompatibleRequests) {
  const GenerationRequest a = sample_request();
  GenerationRequest b = a;
  b.id = "req-2";
  b.seed = 99;       // seeds stay per-request
  b.count = 1;       // so does the amount requested
  b.legalize = true; // and the delivery target
  EXPECT_EQ(batch_key(a, 1), batch_key(b, 1));
  GenerationRequest c = a;
  c.rows = a.rows * 2;
  EXPECT_FALSE(batch_key(a, 1) == batch_key(c, 1));
  EXPECT_FALSE(batch_key(a, 0) == batch_key(a, 1));
  // Mixed-precision requests must not share a batch: the whole wave runs
  // under one PrecisionScope.
  GenerationRequest q = a;
  q.precision = "int8";
  EXPECT_FALSE(batch_key(a, 1) == batch_key(q, 1));
}

}  // namespace
}  // namespace cp::serve
