// Admission control, priority aging, deadlines and cancellation of
// serve::RequestQueue.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>

#include "serve/request_queue.h"

namespace cp::serve {
namespace {

using namespace std::chrono_literals;

struct Handle {
  std::future<GenerationResult> future;
};

PendingRequest make_pending(const std::string& id, Handle& handle, int priority = 1,
                            double deadline_ms = 0, int rows = 32) {
  PendingRequest p;
  p.request.id = id;
  p.request.priority = priority;
  p.request.deadline_ms = deadline_ms;
  p.request.rows = rows;
  p.request.cols = rows;
  p.condition = 0;
  std::promise<GenerationResult> promise;
  handle.future = promise.get_future();
  p.promise = std::move(promise);
  p.admitted_at = Clock::now();
  return p;
}

TEST(RequestQueue, FullQueueRejectsWithReadyRejectedResult) {
  RequestQueue queue(1);
  Handle h1, h2;
  EXPECT_TRUE(queue.try_enqueue(make_pending("a", h1)).admitted);
  const Admission second = queue.try_enqueue(make_pending("b", h2));
  EXPECT_FALSE(second.admitted);
  EXPECT_EQ(second.reason, "queue_full");
  // The rejected request's future is ready — callers never dangle.
  ASSERT_EQ(h2.future.wait_for(0s), std::future_status::ready);
  const GenerationResult r = h2.future.get();
  EXPECT_EQ(r.status, RequestStatus::kRejected);
  EXPECT_EQ(r.reason, "queue_full");
  EXPECT_EQ(queue.size(), 1u);
}

TEST(RequestQueue, ClosedQueueRejectsAsShuttingDown) {
  RequestQueue queue(4);
  queue.close();
  Handle h;
  const Admission a = queue.try_enqueue(make_pending("a", h));
  EXPECT_FALSE(a.admitted);
  EXPECT_EQ(a.reason, "shutting_down");
  EXPECT_EQ(h.future.get().status, RequestStatus::kRejected);
}

TEST(RequestQueue, PopBatchCoalescesCompatibleRequestsOnly) {
  RequestQueue queue(8);
  Handle h1, h2, h3;
  queue.try_enqueue(make_pending("a", h1, 1, 0, /*rows=*/32));
  queue.try_enqueue(make_pending("b", h2, 1, 0, /*rows=*/64));  // incompatible
  queue.try_enqueue(make_pending("c", h3, 1, 0, /*rows=*/32));
  std::vector<PendingRequest> batch = queue.pop_batch(8, 0us);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request.id, "a");
  EXPECT_EQ(batch[1].request.id, "c");
  batch = queue.pop_batch(8, 0us);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.id, "b");
}

TEST(RequestQueue, HigherPriorityJumpsTheLine) {
  RequestQueue queue(8, /*aging_interval_ms=*/1e9);  // aging effectively off
  Handle h1, h2;
  queue.try_enqueue(make_pending("low", h1, 1));
  queue.try_enqueue(make_pending("high", h2, 5));
  const std::vector<PendingRequest> batch = queue.pop_batch(1, 0us);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.id, "high");
}

TEST(RequestQueue, AgingPromotesLongWaiters) {
  // Effective priority = priority + waited_ms / interval. With a 1ms
  // interval, 30ms of waiting outweighs a later priority-5 arrival.
  RequestQueue queue(8, /*aging_interval_ms=*/1.0);
  Handle h1, h2;
  queue.try_enqueue(make_pending("old-low", h1, 1));
  std::this_thread::sleep_for(30ms);
  queue.try_enqueue(make_pending("fresh-high", h2, 5));
  const std::vector<PendingRequest> batch = queue.pop_batch(1, 0us);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.id, "old-low");
}

TEST(RequestQueue, ExpiredDeadlinesCompleteWithoutDispatch) {
  RequestQueue queue(8);
  Handle expired, alive;
  queue.try_enqueue(make_pending("doomed", expired, 1, /*deadline_ms=*/1.0));
  queue.try_enqueue(make_pending("alive", alive, 1, /*deadline_ms=*/0));
  std::this_thread::sleep_for(10ms);
  const std::vector<PendingRequest> batch = queue.pop_batch(8, 0us);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.id, "alive");
  ASSERT_EQ(expired.future.wait_for(0s), std::future_status::ready);
  EXPECT_EQ(expired.future.get().status, RequestStatus::kDeadlineExpired);
}

TEST(RequestQueue, DeadlineExpiredMidBatchCompletesPromiseExactlyOnce) {
  // Regression: a request whose deadline passes while a batch is being
  // assembled is completed as kDeadlineExpired by expire_locked — and must
  // not be completed a second time by a later pop, cancel, or the queue
  // destructor (a double promise.set_value throws std::future_error).
  Handle doomed, alive;
  int completions = 0;
  {
    RequestQueue queue(8);
    PendingRequest p = make_pending("doomed", doomed, 1, /*deadline_ms=*/1.0);
    p.on_complete = [&completions] { ++completions; };
    ASSERT_TRUE(queue.try_enqueue(std::move(p)).admitted);
    queue.try_enqueue(make_pending("alive", alive, 1, /*deadline_ms=*/0));
    std::this_thread::sleep_for(10ms);
    const std::vector<PendingRequest> batch = queue.pop_batch(8, 0us);
    ASSERT_EQ(batch.size(), 1u);  // expired, no dispatch
    EXPECT_EQ(batch[0].request.id, "alive");
    ASSERT_EQ(doomed.future.wait_for(0s), std::future_status::ready);
    EXPECT_EQ(doomed.future.get().status, RequestStatus::kDeadlineExpired);
    EXPECT_EQ(completions, 1);
    EXPECT_FALSE(queue.cancel("doomed"));          // already gone
    queue.close();
    EXPECT_TRUE(queue.pop_batch(8, 0us).empty());  // still gone: shutdown signal
  }  // destructor must not touch the already-completed promise
  EXPECT_EQ(completions, 1);
}

TEST(RequestQueue, CancelRemovesQueuedRequest) {
  RequestQueue queue(8);
  Handle h1, h2;
  queue.try_enqueue(make_pending("keep", h1));
  queue.try_enqueue(make_pending("drop", h2));
  EXPECT_TRUE(queue.cancel("drop"));
  EXPECT_FALSE(queue.cancel("drop"));     // already gone
  EXPECT_FALSE(queue.cancel("unknown"));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(h2.future.get().status, RequestStatus::kCancelled);
}

TEST(RequestQueue, CloseDrainsThenSignalsShutdown) {
  RequestQueue queue(8);
  Handle h;
  queue.try_enqueue(make_pending("last", h));
  queue.close();
  EXPECT_EQ(queue.pop_batch(8, 0us).size(), 1u);  // queued work still drains
  EXPECT_TRUE(queue.pop_batch(8, 0us).empty());   // then the shutdown signal
}

TEST(RequestQueue, DestructionCancelsLeftovers) {
  Handle h;
  {
    RequestQueue queue(8);
    queue.try_enqueue(make_pending("orphan", h));
  }
  ASSERT_EQ(h.future.wait_for(0s), std::future_status::ready);
  EXPECT_EQ(h.future.get().status, RequestStatus::kCancelled);
}

TEST(RequestQueue, EnqueueWaitBlocksUntilSlotFrees) {
  RequestQueue queue(1);
  Handle h1, h2;
  ASSERT_TRUE(queue.enqueue_wait(make_pending("first", h1)).admitted);
  std::thread producer([&] { EXPECT_TRUE(queue.enqueue_wait(make_pending("second", h2)).admitted); });
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(queue.size(), 1u);  // producer is parked on the full queue
  EXPECT_EQ(queue.pop_batch(1, 0us).size(), 1u);
  producer.join();
  EXPECT_EQ(queue.size(), 1u);
}

}  // namespace
}  // namespace cp::serve
