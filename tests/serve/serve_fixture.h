#pragma once
// Shared fixture for serving-layer tests: the same small trained generator
// as the agent suite (32-cell window, stripe data for condition 0,
// transposed stripes for condition 1) plus relaxed design rules, packaged
// so each test can spin up serve::Server instances with varying configs.

#include <gtest/gtest.h>

#include "diffusion/cascade.h"
#include "diffusion/tabular_denoiser.h"
#include "legalize/legalizer.h"
#include "serve/server.h"

namespace cp::serve::testing {

inline squish::Topology stripes(int n, int period, int phase = 0) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, ((c + phase) / period) % 2);
  }
  return t;
}

class ServeFixture : public ::testing::Test {
 protected:
  static constexpr int kWindow = 32;
  /// A generous physical budget for kWindow-sized stripe topologies.
  static constexpr long long kBudgetNm = 4000;

  ServeFixture()
      : schedule_(diffusion::ScheduleConfig{}),
        denoiser_(make_denoiser(/*coarse=*/false)),
        coarse_denoiser_(make_denoiser(/*coarse=*/true)),
        sampler_(schedule_, coarse_denoiser_, denoiser_, fixture_cascade_config()),
        legal0_(relaxed_rules()),
        legal1_(relaxed_rules()) {}

  /// Factor 2 (16x16 coarse grid): an 8x8 coarse stage is too small for the
  /// 17-cell receptive field to learn anything from two training clips.
  static diffusion::CascadeConfig fixture_cascade_config() {
    diffusion::CascadeConfig cfg;
    cfg.factor = 2;
    return cfg;
  }

  static drc::DesignRules relaxed_rules() {
    drc::DesignRules r;
    r.min_space_nm = 30;
    r.min_width_nm = 30;
    r.min_area_nm2 = 900;
    return r;
  }

  diffusion::TabularDenoiser make_denoiser(bool coarse) {
    diffusion::TabularConfig cfg;
    cfg.conditions = 2;
    cfg.draws_per_bucket = 3;
    diffusion::TabularDenoiser d(schedule_, cfg);
    util::Rng rng(coarse ? 2 : 1);
    std::vector<squish::Topology> a, b;
    for (int p = 6; p <= 8; p += 2) {
      for (int phase = 0; phase < 2 * p; ++phase) {
        squish::Topology sa = stripes(kWindow, p, phase);
        squish::Topology sb = sa.transposed();
        if (coarse) {
          sa = squish::downsample_majority(sa, 2);
          sb = squish::downsample_majority(sb, 2);
        }
        a.push_back(std::move(sa));
        b.push_back(std::move(sb));
      }
    }
    d.fit(a, 0, rng);
    d.fit(b, 1, rng);
    return d;
  }

  std::vector<const legalize::Legalizer*> legalizers() const { return {&legal0_, &legal1_}; }

  /// A well-formed request sized for the fixture model.
  GenerationRequest make_request(const std::string& id, std::uint64_t seed,
                                 const std::string& style = "Layer-10001") const {
    GenerationRequest r;
    r.id = id;
    r.style = style;
    r.count = 1;
    r.rows = kWindow;
    r.cols = kWindow;
    r.sample_steps = 6;
    r.polish_rounds = 1;
    r.width_nm = kBudgetNm;
    r.height_nm = kBudgetNm;
    r.seed = seed;
    return r;
  }

  diffusion::NoiseSchedule schedule_;
  diffusion::TabularDenoiser denoiser_;
  diffusion::TabularDenoiser coarse_denoiser_;
  diffusion::CascadeSampler sampler_;
  legalize::Legalizer legal0_;
  legalize::Legalizer legal1_;
};

}  // namespace cp::serve::testing
