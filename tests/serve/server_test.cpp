// Lifecycle, caching and determinism tests for serve::Server.
//
// The determinism contract under test: a request's payload is a pure
// function of its content fields — worker count, submission order, cache
// state and batch composition change only latency, never bits.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "agent/tools.h"
#include "serve/server.h"
#include "tests/serve/serve_fixture.h"

namespace cp::serve {
namespace {

using testing::ServeFixture;
using testing::stripes;

class ServerTest : public ServeFixture {};

std::map<std::string, std::uint64_t> replay(Server& server,
                                            std::vector<GenerationRequest> requests) {
  std::vector<std::pair<std::string, std::future<GenerationResult>>> futures;
  for (GenerationRequest& r : requests) {
    std::string id = r.id;
    Server::Submitted s = server.submit(std::move(r));
    EXPECT_TRUE(s.admitted) << id << ": " << s.reason;
    futures.emplace_back(std::move(id), std::move(s.result));
  }
  std::map<std::string, std::uint64_t> hashes;
  for (auto& [id, future] : futures) {
    const GenerationResult result = future.get();
    EXPECT_EQ(result.status, RequestStatus::kOk) << id << ": " << result.reason;
    hashes[id] = result.library_hash();
  }
  return hashes;
}

TEST_F(ServerTest, PayloadIsIdenticalForOneAndManyWorkers) {
  // A mixed trace: both styles, both delivery targets, a duplicate seed.
  std::vector<GenerationRequest> trace;
  trace.push_back(make_request("a", 7));
  trace.push_back(make_request("b", 8, "Layer-10003"));
  trace.push_back(make_request("c", 7));  // duplicate content of "a"
  GenerationRequest raw = make_request("d", 9);
  raw.legalize = false;
  raw.rows = raw.cols = 16;
  trace.push_back(raw);
  GenerationRequest multi = make_request("e", 10);
  multi.count = 2;
  trace.push_back(multi);

  std::map<std::string, std::uint64_t> baseline;
  {
    ServerConfig config;
    config.workers = 1;
    Server server(sampler_, legalizers(), config);
    baseline = replay(server, trace);
  }
  EXPECT_EQ(baseline.at("a"), baseline.at("c"));

  {
    ServerConfig config;
    config.workers = 4;
    config.batch.max_batch_requests = 4;
    Server server(sampler_, legalizers(), config);
    // Different submission order on top of different worker count.
    std::vector<GenerationRequest> reversed(trace.rbegin(), trace.rend());
    const auto hashes = replay(server, std::move(reversed));
    EXPECT_EQ(hashes, baseline);
  }
}

TEST_F(ServerTest, RepeatedRequestHitsTheCache) {
  ServerConfig config;
  config.workers = 2;
  Server server(sampler_, legalizers(), config);
  const GenerationResult first = server.submit(make_request("r1", 5)).result.get();
  ASSERT_EQ(first.status, RequestStatus::kOk);
  EXPECT_FALSE(first.cache_hit);
  const GenerationResult second = server.submit(make_request("r2", 5)).result.get();
  ASSERT_EQ(second.status, RequestStatus::kOk);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.payload.get(), first.payload.get());  // shared, not recomputed
  EXPECT_GE(server.cache().hits(), 1);
}

TEST_F(ServerTest, QuantizedRequestsNeverShareCacheWithFp32) {
  // precision is part of the content hash, so an int8 request submitted
  // right after its fp32 twin must miss the cache and get its own payload —
  // cross-precision sharing would silently serve fp32 bits to an int8
  // client (or vice versa).
  ServerConfig config;
  config.workers = 2;
  Server server(sampler_, legalizers(), config);
  const GenerationResult fp32 = server.submit(make_request("f", 5)).result.get();
  ASSERT_EQ(fp32.status, RequestStatus::kOk);

  GenerationRequest q = make_request("q", 5);
  q.precision = "int8";
  const GenerationResult int8 = server.submit(std::move(q)).result.get();
  ASSERT_EQ(int8.status, RequestStatus::kOk);
  EXPECT_FALSE(int8.cache_hit);
  EXPECT_NE(int8.payload.get(), fp32.payload.get());

  // But a second int8 request with the same content does hit its own entry.
  GenerationRequest q2 = make_request("q2", 5);
  q2.precision = "int8";
  const GenerationResult again = server.submit(std::move(q2)).result.get();
  ASSERT_EQ(again.status, RequestStatus::kOk);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.payload.get(), int8.payload.get());
}

TEST_F(ServerTest, CacheDisabledStillDeliversIdenticalPayloads) {
  ServerConfig config;
  config.cache_entries = 0;
  Server server(sampler_, legalizers(), config);
  const GenerationResult first = server.submit(make_request("r1", 5)).result.get();
  const GenerationResult second = server.submit(make_request("r2", 5)).result.get();
  ASSERT_EQ(first.status, RequestStatus::kOk);
  ASSERT_EQ(second.status, RequestStatus::kOk);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(payload_hash(*first.payload), payload_hash(*second.payload));
}

TEST_F(ServerTest, IdenticalInFlightRequestsShareOneComputation) {
  ServerConfig config;
  config.workers = 2;
  config.batch.max_wait_us = 20000;  // generous fill window
  Server server(sampler_, legalizers(), config);
  // Park a slow request first so the twins are queued together behind it.
  auto slow = server.submit([&] {
    GenerationRequest r = make_request("slow", 11);
    r.count = 2;
    return r;
  }());
  auto t1 = server.submit(make_request("twin-1", 12));
  auto t2 = server.submit(make_request("twin-2", 12));
  const GenerationResult r1 = t1.result.get();
  const GenerationResult r2 = t2.result.get();
  ASSERT_EQ(r1.status, RequestStatus::kOk);
  ASSERT_EQ(r2.status, RequestStatus::kOk);
  // The second twin is served by dedup (same batch) or by the cache
  // (different batch) — either way it shares the leader's payload.
  EXPECT_TRUE(r2.deduped || r2.cache_hit || r1.deduped || r1.cache_hit);
  EXPECT_EQ(r1.library_hash(), r2.library_hash());
  slow.result.get();
}

TEST_F(ServerTest, InvalidRequestsRejectWithReadyResult) {
  Server server(sampler_, legalizers());
  GenerationRequest bad = make_request("", 1);  // missing id
  Server::Submitted s = server.submit(std::move(bad));
  EXPECT_FALSE(s.admitted);
  EXPECT_EQ(s.result.get().status, RequestStatus::kRejected);

  GenerationRequest unknown = make_request("x", 1, "Layer-404");
  s = server.submit(std::move(unknown));
  EXPECT_FALSE(s.admitted);
  const GenerationResult r = s.result.get();
  EXPECT_EQ(r.status, RequestStatus::kRejected);
  EXPECT_NE(r.reason.find("invalid"), std::string::npos);
}

TEST_F(ServerTest, ShutdownRejectsNewWorkButDrainsAdmitted) {
  ServerConfig config;
  Server server(sampler_, legalizers(), config);
  auto inflight = server.submit(make_request("in", 3));
  server.shutdown();
  EXPECT_EQ(inflight.result.get().status, RequestStatus::kOk);  // drained
  auto late = server.submit(make_request("late", 4));
  EXPECT_FALSE(late.admitted);
  EXPECT_EQ(late.result.get().status, RequestStatus::kRejected);
}

// A generator whose candidates only occasionally legalize: stream draws
// select between clean period-8 stripes and a period-1 comb that cannot fit
// the physical budget, so the server must retry streams in order.
class FlakyGenerator : public diffusion::TopologyGenerator {
 public:
  explicit FlakyGenerator(int good_one_in) : good_one_in_(good_one_in) {}

  squish::Topology sample(const diffusion::SampleConfig& config,
                          util::Rng& rng) const override {
    const bool good = good_one_in_ > 0 && rng.uniform_int(0, good_one_in_ - 1) == 0;
    return stripes(config.rows, good ? 8 : 1);
  }

  squish::Topology modify(const squish::Topology& known, const squish::Topology&,
                          const diffusion::ModifyConfig&, util::Rng&) const override {
    return known;
  }

  const char* name() const override { return "FlakyGenerator"; }
  bool thread_safe() const override { return true; }

 private:
  int good_one_in_;
};

TEST_F(ServerTest, LegalizationFailuresRetryUntilFilled) {
  FlakyGenerator flaky(/*good_one_in=*/6);
  ServerConfig config;
  config.workers = 2;
  Server server(flaky, legalizers(), config);
  GenerationRequest r = make_request("retry", 21);
  r.count = 2;
  // A 512nm budget fits the 4 column intervals of a period-8 stripe set
  // (4 x 30nm) but not the 32 intervals of the period-1 comb — the comb
  // candidates must fail legalization and be retried past.
  r.width_nm = r.height_nm = 512;
  const GenerationResult res = server.submit(std::move(r)).result.get();
  ASSERT_EQ(res.status, RequestStatus::kOk) << res.reason;
  EXPECT_EQ(res.delivered(), 2u);
  EXPECT_GT(res.attempts, 2);  // rejected candidates were examined

  // Determinism holds across worker counts even on the retry path.
  Server serial(flaky, legalizers(), ServerConfig{});
  GenerationRequest again = make_request("retry-serial", 21);
  again.count = 2;
  again.width_nm = again.height_nm = 512;
  const GenerationResult res1 = serial.submit(std::move(again)).result.get();
  EXPECT_EQ(res1.library_hash(), res.library_hash());
  EXPECT_EQ(res1.attempts, res.attempts);
}

TEST_F(ServerTest, HopelessRequestCompletesIncomplete) {
  FlakyGenerator hopeless(/*good_one_in=*/0);  // never legal
  ServerConfig config;
  config.max_attempts_per_pattern = 2;  // small budget: 2*count+64
  Server server(hopeless, legalizers(), config);
  GenerationRequest doomed = make_request("doomed", 1);
  doomed.width_nm = doomed.height_nm = 512;  // the comb can never fit
  const GenerationResult res = server.submit(std::move(doomed)).result.get();
  EXPECT_EQ(res.status, RequestStatus::kIncomplete);
  EXPECT_EQ(res.delivered(), 0u);
  EXPECT_EQ(res.attempts, config.max_attempts_per_pattern * 1 + 64);
  EXPECT_FALSE(res.reason.empty());
}

TEST_F(ServerTest, AgentGenerationToolRoutesThroughServer) {
  ServerConfig config;
  Server server(sampler_, legalizers(), config);
  agent::PatternStore store;
  agent::GeneratorBackend backend;
  backend.sampler = &sampler_;
  backend.legalizers = {&legal0_, &legal1_};
  backend.store = &store;
  backend.window = kWindow;
  backend.server = &server;
  agent::ToolRegistry tools = agent::make_standard_tools(backend);

  util::Json args;
  args["style"] = "Layer-10001";
  args["rows"] = 16;
  args["cols"] = 16;
  args["seed"] = 3;
  const agent::ToolResult first = tools.call("topology_generation", args);
  ASSERT_TRUE(first.ok) << first.payload.dump();
  EXPECT_TRUE(first.payload.at("served").as_bool());
  EXPECT_FALSE(first.payload.at("cache_hit").as_bool());
  EXPECT_TRUE(store.has_topology(first.payload.at("topology_id").as_string()));

  const agent::ToolResult second = tools.call("topology_generation", args);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.payload.at("cache_hit").as_bool());  // same args => cache
}

}  // namespace
}  // namespace cp::serve
