// Worker-channel line classification and internal-id rewriting
// (serve/wire.h; docs/SERVING.md "Process architecture").

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "serve/wire.h"

namespace cp::serve::wire {
namespace {

TEST(Wire, ClassifiesControlLinesByExactPrefix) {
  EXPECT_EQ(classify_worker_line("{\"hb\":1}"), WorkerLine::kHeartbeat);
  EXPECT_EQ(classify_worker_line("{\"hb\":123456}"), WorkerLine::kHeartbeat);
  EXPECT_EQ(classify_worker_line("{\"ready\":true}"), WorkerLine::kReady);
  EXPECT_EQ(classify_worker_line("{\"drained\":true}"), WorkerLine::kDrained);
}

TEST(Wire, EverythingElseIsAResult) {
  EXPECT_EQ(classify_worker_line("{\"id\":\"s1\",\"status\":\"ok\"}"), WorkerLine::kResult);
  // Near-misses are results, not control lines: classification is an exact
  // prefix/equality match on worker-canonical spellings.
  EXPECT_EQ(classify_worker_line("{\"ready\":true,\"x\":1}"), WorkerLine::kResult);
  EXPECT_EQ(classify_worker_line("{ \"hb\":1}"), WorkerLine::kResult);
  EXPECT_EQ(classify_worker_line(""), WorkerLine::kResult);
}

TEST(Wire, InternalIdRoundTrips) {
  for (const std::uint64_t seq : {0ULL, 1ULL, 42ULL, 18446744073709551615ULL}) {
    std::uint64_t parsed = 0;
    ASSERT_TRUE(parse_internal_id(internal_id(seq), &parsed));
    EXPECT_EQ(parsed, seq);
  }
}

TEST(Wire, RejectsNonInternalIds) {
  std::uint64_t seq = 0;
  EXPECT_FALSE(parse_internal_id("", &seq));
  EXPECT_FALSE(parse_internal_id("s", &seq));       // no digits
  EXPECT_FALSE(parse_internal_id("x123", &seq));    // wrong tag
  EXPECT_FALSE(parse_internal_id("s12a", &seq));    // non-digit
  EXPECT_FALSE(parse_internal_id("client-7", &seq));
}

}  // namespace
}  // namespace cp::serve::wire
