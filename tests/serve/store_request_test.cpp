// Store-backed retrieval through the serving layer: requests with
// source="store" are answered synchronously from an attached
// pattlib::PatternStore — no sampling, no queue slot, no cache entry.

#include <gtest/gtest.h>

#include "pattlib/pattern_store.h"
#include "serve_fixture.h"
#include "squish/squish.h"

namespace cp::serve::testing {
namespace {

class StoreRequestTest : public ServeFixture {
 protected:
  /// A well-formed squish pattern whose canonical topology is distinct per
  /// stripe period (different run counts survive deduplication).
  squish::SquishPattern make_pattern(int period) const {
    squish::SquishPattern p;
    p.topology = stripes(kWindow, period);
    p.dx = squish::uniform_deltas(kWindow, kBudgetNm);
    p.dy = squish::uniform_deltas(kWindow, kBudgetNm);
    return p;
  }

  void fill_store(pattlib::PatternStore& store) const {
    pattlib::PatternMeta meta;
    meta.style_tag = "stripes";
    store.add(make_pattern(4), meta);
    store.add(make_pattern(8), meta);
    meta.style_tag = "other";
    store.add(make_pattern(16), meta);
  }

  GenerationRequest store_request(const std::string& id, const std::string& tag, int count) const {
    GenerationRequest r = make_request(id, /*seed=*/1);
    r.source = "store";
    r.style = tag;
    r.count = count;
    return r;
  }
};

TEST_F(StoreRequestTest, RetrievalByTagWildcardAndLimit) {
  pattlib::PatternStore store;
  fill_store(store);
  ServerConfig cfg;
  cfg.store = &store;
  Server server(sampler_, legalizers(), cfg);

  auto sub = server.submit(store_request("r1", "stripes", 2));
  ASSERT_TRUE(sub.admitted);
  GenerationResult res = sub.result.get();
  EXPECT_EQ(res.status, RequestStatus::kOk);
  ASSERT_TRUE(res.payload != nullptr);
  EXPECT_EQ(res.payload->patterns.size(), 2u);
  EXPECT_TRUE(res.payload->topologies.empty());
  for (const auto& p : res.payload->patterns) EXPECT_TRUE(p.well_formed());

  // "*" matches every tag.
  res = server.submit(store_request("r2", "*", 3)).result.get();
  EXPECT_EQ(res.status, RequestStatus::kOk);
  EXPECT_EQ(res.payload->patterns.size(), 3u);

  // Asking for more than the store holds delivers what exists, kIncomplete.
  res = server.submit(store_request("r3", "*", 10)).result.get();
  EXPECT_EQ(res.status, RequestStatus::kIncomplete);
  EXPECT_EQ(res.payload->patterns.size(), 3u);

  // An unmatched tag is an empty (incomplete) payload, not an error.
  res = server.submit(store_request("r4", "no_such_tag", 1)).result.get();
  EXPECT_EQ(res.status, RequestStatus::kIncomplete);
  EXPECT_EQ(res.payload->patterns.size(), 0u);
}

TEST_F(StoreRequestTest, StoreRequestsBypassQueueAndCache) {
  pattlib::PatternStore store;
  fill_store(store);
  ServerConfig cfg;
  cfg.store = &store;
  Server server(sampler_, legalizers(), cfg);

  const GenerationRequest req = store_request("dup", "stripes", 2);
  const GenerationResult first = server.submit(req).result.get();
  const GenerationResult second = server.submit(req).result.get();
  // Identical content, but store results never enter the PatternCache: the
  // store may gain patterns between calls.
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(payload_hash(*first.payload), payload_hash(*second.payload));
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST_F(StoreRequestTest, RejectedWhenNoStoreAttached) {
  Server server(sampler_, legalizers(), ServerConfig{});
  auto sub = server.submit(store_request("r1", "stripes", 1));
  EXPECT_FALSE(sub.admitted);
  EXPECT_NE(sub.reason.find("no pattern store"), std::string::npos) << sub.reason;
  const GenerationResult res = sub.result.get();
  EXPECT_EQ(res.status, RequestStatus::kRejected);
}

TEST_F(StoreRequestTest, ValidationAndWireFormat) {
  // Unknown source values are rejected up front.
  GenerationRequest bad = make_request("b", 1);
  bad.source = "elsewhere";
  EXPECT_FALSE(validate(bad).empty());

  // A store request's style is a free-form tag, not a dataset style.
  GenerationRequest tagged = store_request("t", "any-tag-at-all", 1);
  EXPECT_TRUE(validate(tagged).empty());
  GenerationRequest unknown_style = make_request("u", 1, "any-tag-at-all");
  EXPECT_FALSE(validate(unknown_style).empty());

  // source is a content field: it changes the hash and survives the wire.
  GenerationRequest gen = make_request("h", 1);
  GenerationRequest via_store = gen;
  via_store.source = "store";
  EXPECT_NE(gen.content_hash(), via_store.content_hash());
  const GenerationRequest parsed = GenerationRequest::from_json(via_store.to_json());
  EXPECT_EQ(parsed.source, "store");
  EXPECT_EQ(parsed.content_hash(), via_store.content_hash());
  // Default (generate) requests omit the field entirely.
  EXPECT_FALSE(gen.to_json().contains("source"));
}

}  // namespace
}  // namespace cp::serve::testing
