// Concurrency stress for the serving layer, built to run under the TSAN
// configuration (cmake -DCHATPATTERN_TSAN=ON; ctest -R serve_stress):
// many producer threads push through a small queue (exercising blocking
// admission / backpressure), workers fan out, cancellations race the
// dispatcher, and drain()/shutdown() race completions. Uses a trivial
// deterministic generator so TSAN time goes to the serving machinery, not
// the diffusion chain.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "tests/serve/serve_fixture.h"

namespace cp::serve {
namespace {

using testing::stripes;

/// Deterministic, cheap, thread-safe: the stripe phase comes from the Rng
/// stream, so payloads are still a pure function of (seed, stream).
class StripeGenerator : public diffusion::TopologyGenerator {
 public:
  squish::Topology sample(const diffusion::SampleConfig& config,
                          util::Rng& rng) const override {
    return stripes(config.rows, 8, rng.uniform_int(0, 7));
  }
  squish::Topology modify(const squish::Topology& known, const squish::Topology&,
                          const diffusion::ModifyConfig&, util::Rng&) const override {
    return known;
  }
  const char* name() const override { return "StripeGenerator"; }
  bool thread_safe() const override { return true; }
};

TEST(ServeStress, ConcurrentProducersBackpressureAndDrain) {
  StripeGenerator generator;
  const drc::DesignRules rules{};  // defaults; legalize=false path only
  const legalize::Legalizer legal0(rules), legal1(rules);

  ServerConfig config;
  config.workers = 4;
  config.queue_capacity = 8;  // small: producers must block on admission
  config.cache_entries = 16;
  config.batch.max_batch_requests = 4;
  config.batch.max_wait_us = 200;
  Server server(generator, {&legal0, &legal1});

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 32;
  std::atomic<int> ok{0}, shared{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        GenerationRequest r;
        r.id = "p" + std::to_string(p) + "-" + std::to_string(i);
        r.rows = r.cols = 16;
        r.legalize = false;
        // Only 8 distinct contents across all producers: heavy dedup/cache
        // contention is the point.
        r.seed = static_cast<std::uint64_t>(i % 8);
        r.count = 1 + (static_cast<int>(r.seed) % 2);
        Server::Submitted s = server.submit(std::move(r));
        ASSERT_TRUE(s.admitted) << s.reason;
        const GenerationResult result = s.result.get();
        ASSERT_EQ(result.status, RequestStatus::kOk) << result.reason;
        ASSERT_EQ(result.delivered(), static_cast<std::size_t>(1 + (i % 8) % 2));
        if (result.cache_hit || result.deduped) shared.fetch_add(1);
        ok.fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  server.drain();
  EXPECT_EQ(ok.load(), kProducers * kPerProducer);
  // 128 requests over 8 distinct contents: almost everything is shared.
  EXPECT_GT(shared.load(), kProducers * kPerProducer / 2);
  server.shutdown();
}

TEST(ServeStress, CancellationRacesDispatch) {
  StripeGenerator generator;
  const drc::DesignRules rules{};
  const legalize::Legalizer legal0(rules), legal1(rules);
  ServerConfig config;
  config.workers = 2;
  config.cache_entries = 0;  // force every request through the queue
  Server server(generator, {&legal0, &legal1}, config);

  std::vector<std::future<GenerationResult>> futures;
  std::vector<std::string> ids;
  for (int i = 0; i < 64; ++i) {
    GenerationRequest r;
    r.id = "c" + std::to_string(i);
    r.rows = r.cols = 16;
    r.legalize = false;
    r.seed = static_cast<std::uint64_t>(1000 + i);
    ids.push_back(r.id);
    Server::Submitted s = server.submit(std::move(r));
    ASSERT_TRUE(s.admitted);
    futures.push_back(std::move(s.result));
  }
  std::thread canceller([&] {
    for (const std::string& id : ids) server.cancel(id);
  });
  canceller.join();
  int done = 0, cancelled = 0;
  for (auto& f : futures) {
    const GenerationResult r = f.get();  // every future must complete
    if (r.status == RequestStatus::kOk) ++done;
    if (r.status == RequestStatus::kCancelled) ++cancelled;
    EXPECT_TRUE(r.status == RequestStatus::kOk || r.status == RequestStatus::kCancelled);
  }
  EXPECT_EQ(done + cancelled, 64);
  server.drain();
}

TEST(ServeStress, DeadlineExpiryRacesCancellationAndDrain) {
  // Three-way race on the RequestQueue, built for the TSAN configuration:
  // producers enqueue with tiny deadlines, a canceller sweeps ids, a
  // consumer pops batches, and close() lands mid-stream. Every promise must
  // complete exactly once (a double set_value throws std::future_error and
  // fails the test through the on_complete counter).
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 64;
  constexpr int kTotal = kProducers * kPerProducer;
  RequestQueue queue(16);
  std::vector<std::future<GenerationResult>> futures(kTotal);
  std::atomic<int> completions{0};
  std::atomic<int> admitted{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int slot = p * kPerProducer + i;
        PendingRequest pending;
        pending.request.id = "r" + std::to_string(slot);
        pending.request.rows = pending.request.cols = 16;
        // Half the requests carry a deadline short enough to expire while
        // queued under contention; the rest have none.
        pending.request.deadline_ms = (i % 2 == 0) ? 0.5 : 0.0;
        pending.promise = std::promise<GenerationResult>();
        futures[static_cast<std::size_t>(slot)] = pending.promise.get_future();
        pending.on_complete = [&completions] { completions.fetch_add(1); };
        pending.admitted_at = Clock::now();
        if (queue.enqueue_wait(std::move(pending)).admitted) admitted.fetch_add(1);
      }
    });
  }
  std::thread canceller([&] {
    for (int slot = 0; slot < kTotal; ++slot) {
      queue.cancel("r" + std::to_string(slot));
      if (slot % 16 == 0) std::this_thread::yield();
    }
  });
  std::atomic<bool> stop_consumer{false};
  std::atomic<int> dispatched{0};
  std::thread consumer([&] {
    while (!stop_consumer.load()) {
      std::vector<PendingRequest> batch = queue.pop_batch(4, std::chrono::microseconds(100));
      if (batch.empty() && queue.closed()) break;
      for (PendingRequest& p : batch) {
        GenerationResult r;
        r.status = RequestStatus::kOk;
        fulfill(p, std::move(r));
        dispatched.fetch_add(1);
      }
    }
  });
  for (std::thread& t : producers) t.join();
  queue.close();  // drain: consumer keeps popping until empty, then exits
  consumer.join();
  stop_consumer.store(true);
  canceller.join();

  // Every admitted request completed exactly once, through exactly one of
  // the three exits (dispatch, deadline expiry, cancellation); rejected
  // ones (post-close producers) also completed via the rejection path.
  int ok = 0, expired = 0, cancelled = 0, rejected = 0;
  for (auto& f : futures) {
    ASSERT_TRUE(f.valid());
    const GenerationResult r = f.get();
    switch (r.status) {
      case RequestStatus::kOk: ++ok; break;
      case RequestStatus::kDeadlineExpired: ++expired; break;
      case RequestStatus::kCancelled: ++cancelled; break;
      case RequestStatus::kRejected: ++rejected; break;
      default: FAIL() << "unexpected status " << to_string(r.status);
    }
  }
  EXPECT_EQ(ok + expired + cancelled + rejected, kTotal);
  EXPECT_EQ(ok, dispatched.load());
  EXPECT_EQ(completions.load(), kTotal);
}

TEST(ServeStress, ShutdownWhileProducersRunCompletesEveryFuture) {
  StripeGenerator generator;
  const drc::DesignRules rules{};
  const legalize::Legalizer legal0(rules), legal1(rules);
  auto server = std::make_unique<Server>(generator, std::vector<const legalize::Legalizer*>{
                                                        &legal0, &legal1});

  std::vector<std::future<GenerationResult>> futures;
  for (int i = 0; i < 32; ++i) {
    GenerationRequest r;
    r.id = "s" + std::to_string(i);
    r.rows = r.cols = 16;
    r.legalize = false;
    r.seed = static_cast<std::uint64_t>(i);
    Server::Submitted s = server->try_submit(std::move(r));
    if (s.admitted || s.result.valid()) futures.push_back(std::move(s.result));
  }
  server.reset();  // destructor = close + drain + stop
  for (auto& f : futures) {
    const GenerationResult r = f.get();
    EXPECT_TRUE(r.status == RequestStatus::kOk || r.status == RequestStatus::kRejected ||
                r.status == RequestStatus::kCancelled)
        << to_string(r.status);
  }
}

}  // namespace
}  // namespace cp::serve
