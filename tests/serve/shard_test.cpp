// Rendezvous-hash routing properties of serve::ShardMap: stability while
// the alive set is unchanged, minimal movement when a worker dies, and the
// retry-target semantics of owner_excluding (docs/SERVING.md).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "serve/shard.h"

namespace cp::serve {
namespace {

std::uint64_t key_for(int i) {
  // Cheap splitmix-style scramble so keys are spread over the full range.
  std::uint64_t x = static_cast<std::uint64_t>(i) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

ShardMap all_alive(int shards) {
  ShardMap map(shards);
  for (int s = 0; s < shards; ++s) map.set_alive(s, true);
  return map;
}

TEST(ShardMap, StartsAllDeadAndOwnerIsMinusOne) {
  ShardMap map(4);
  EXPECT_EQ(map.alive_count(), 0);
  EXPECT_EQ(map.owner(42), -1);
  EXPECT_EQ(map.owner_excluding(42, 0), -1);
}

TEST(ShardMap, OwnerIsStableWhileAliveSetUnchanged) {
  const ShardMap map = all_alive(4);
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t k = key_for(i);
    const int first = map.owner(k);
    ASSERT_GE(first, 0);
    ASSERT_LT(first, 4);
    EXPECT_EQ(map.owner(k), first);  // pure function of (key, alive set)
  }
}

TEST(ShardMap, DistributionIsRoughlyBalanced) {
  const ShardMap map = all_alive(4);
  std::map<int, int> counts;
  constexpr int kKeys = 4096;
  for (int i = 0; i < kKeys; ++i) counts[map.owner(key_for(i))]++;
  for (int s = 0; s < 4; ++s) {
    // Each shard should own a substantial slice (expected 25%; allow wide
    // slack — this is a sanity check, not a statistics test).
    EXPECT_GT(counts[s], kKeys / 8) << "shard " << s << " starved";
    EXPECT_LT(counts[s], kKeys / 2) << "shard " << s << " overloaded";
  }
}

TEST(ShardMap, DeathMovesOnlyTheDeadShardsKeys) {
  ShardMap map = all_alive(4);
  std::vector<int> before(512);
  for (int i = 0; i < 512; ++i) before[static_cast<std::size_t>(i)] = map.owner(key_for(i));

  map.set_alive(2, false);
  for (int i = 0; i < 512; ++i) {
    const int now = map.owner(key_for(i));
    const int was = before[static_cast<std::size_t>(i)];
    ASSERT_NE(now, 2);  // dead shards own nothing
    if (was != 2) {
      EXPECT_EQ(now, was) << "key " << i << " moved although its owner survived";
    }
  }
}

TEST(ShardMap, RevivalRestoresOriginalOwnership) {
  ShardMap map = all_alive(4);
  std::vector<int> before(256);
  for (int i = 0; i < 256; ++i) before[static_cast<std::size_t>(i)] = map.owner(key_for(i));
  map.set_alive(1, false);
  map.set_alive(1, true);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(map.owner(key_for(i)), before[static_cast<std::size_t>(i)]);
  }
}

TEST(ShardMap, OwnerExcludingMatchesRoutingAfterDeath) {
  // The retry target computed while the dying shard is still marked alive
  // must equal the owner after it is actually marked dead — the front-end
  // retries onto exactly the shard the key would land on anyway.
  ShardMap map = all_alive(4);
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t k = key_for(i);
    const int owner = map.owner(k);
    const int retry = map.owner_excluding(k, owner);
    ShardMap after = all_alive(4);
    after.set_alive(owner, false);
    EXPECT_EQ(retry, after.owner(k));
    EXPECT_NE(retry, owner);
  }
}

TEST(ShardMap, OwnerExcludingLastSurvivorIsMinusOne) {
  ShardMap map(2);
  map.set_alive(0, true);
  const std::uint64_t k = key_for(7);
  EXPECT_EQ(map.owner(k), 0);
  EXPECT_EQ(map.owner_excluding(k, 0), -1);
}

TEST(ShardMap, SingleShardOwnsEverything) {
  ShardMap map(1);
  map.set_alive(0, true);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(map.owner(key_for(i)), 0);
}

TEST(ShardMap, WeightIsDeterministic) {
  EXPECT_EQ(ShardMap::weight(123, 0), ShardMap::weight(123, 0));
  EXPECT_NE(ShardMap::weight(123, 0), ShardMap::weight(123, 1));
  EXPECT_NE(ShardMap::weight(123, 0), ShardMap::weight(124, 0));
}

}  // namespace
}  // namespace cp::serve
