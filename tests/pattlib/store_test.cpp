// PatternStore (pattlib/pattern_store.h): canonical-hash dedup, metadata
// queries, persistence round trips, DRC amendments, torn-tail crash
// recovery (bit-identical restart) and bit-rot detection.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "io/gds.h"
#include "pattlib/pattern_store.h"
#include "util/fault.h"
#include "util/fs.h"

namespace cp::pattlib {
namespace {

std::string temp_path(const std::string& name) { return ::testing::TempDir() + "/" + name; }

/// A small squish pattern: `bars` full-width horizontal bars.
squish::SquishPattern bar_pattern(int bars, geometry::Coord bar_nm = 100,
                                  geometry::Coord gap_nm = 60) {
  std::vector<geometry::Rect> rects;
  geometry::Coord y = 0;
  for (int i = 0; i < bars; ++i) {
    rects.push_back({0, y, 400, y + bar_nm});
    y += bar_nm + gap_nm;
  }
  return squish::squish(rects, {0, 0, 400, y});
}

TEST(TopologyHashTest, InvariantUnderScanLineSplits) {
  const squish::SquishPattern a = bar_pattern(3);
  // The same physical bars with different nm sizes have the same canonical
  // topology (scan-line structure), hence the same hash.
  const squish::SquishPattern b = bar_pattern(3, 180, 90);
  EXPECT_EQ(topology_hash(a.topology), topology_hash(b.topology));
  // Upsampling duplicates rows/cols — a pure scan-line split.
  EXPECT_EQ(topology_hash(squish::upsample_nearest(a.topology, 2)), topology_hash(a.topology));
  // A different bar count is a different canonical topology.
  EXPECT_NE(topology_hash(a.topology), topology_hash(bar_pattern(4).topology));
}

TEST(PatternStoreTest, InMemoryAddDedupAndQuery) {
  PatternStore store;
  PatternMeta meta;
  meta.style_tag = "stripes";
  const AddResult first = store.add(bar_pattern(2), meta);
  EXPECT_TRUE(first.inserted);
  meta.style_tag = "other";
  const AddResult dup = store.add(bar_pattern(2, 300, 40), meta);  // same canonical topology
  EXPECT_FALSE(dup.inserted);
  EXPECT_EQ(dup.id, first.id);
  meta.style_tag = "stripes";
  meta.layer = 3;
  EXPECT_TRUE(store.add(bar_pattern(5), meta).inserted);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.stats().dedup_rejects, 1);

  Query q;
  q.style_tag = "stripes";
  EXPECT_EQ(store.query(q).size(), 2u);  // the dup kept the FIRST writer's tag
  q.layer = 3;
  const auto ids = store.query(q);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(store.at(ids[0]).meta.layer, 3);

  Query by_rows;
  by_rows.min_rows = bar_pattern(5).topology.rows();
  EXPECT_EQ(store.query(by_rows).size(), 1u);

  EXPECT_TRUE(store.find_by_hash(topology_hash(bar_pattern(2).topology)).has_value());
  EXPECT_FALSE(store.find_by_hash(0xdeadbeefULL).has_value());
  EXPECT_THROW((void)store.at(99), std::out_of_range);
  EXPECT_THROW((void)store.add(squish::SquishPattern{}, {}), std::invalid_argument);
}

TEST(PatternStoreTest, PersistReopenRoundTrip) {
  const std::string path = temp_path("store_roundtrip.cppl");
  std::remove(path.c_str());
  {
    PatternStore store(path);
    PatternMeta meta;
    meta.source = "unit.gds";
    meta.structure = "TOP";
    meta.style_tag = "stripes";
    meta.layer = 7;
    meta.window_x = 4096;
    meta.window_y = 2048;
    for (int bars = 1; bars <= 4; ++bars) EXPECT_TRUE(store.add(bar_pattern(bars), meta).inserted);
    store.flush();
  }
  PatternStore reopened(path);
  ASSERT_EQ(reopened.size(), 4u);
  EXPECT_EQ(reopened.stats().recovered_bytes, 0u);
  const StoredPattern& e = reopened.at(2);
  EXPECT_EQ(e.id, 2u);
  EXPECT_EQ(e.meta.source, "unit.gds");
  EXPECT_EQ(e.meta.structure, "TOP");
  EXPECT_EQ(e.meta.style_tag, "stripes");
  EXPECT_EQ(e.meta.layer, 7);
  EXPECT_EQ(e.meta.window_x, 4096);
  EXPECT_EQ(e.meta.window_y, 2048);
  EXPECT_EQ(e.pattern.topology, bar_pattern(3).topology);
  EXPECT_EQ(e.pattern.dx, bar_pattern(3).dx);
  EXPECT_EQ(e.pattern.dy, bar_pattern(3).dy);
  EXPECT_EQ(e.topology_hash, topology_hash(bar_pattern(3).topology));
  EXPECT_DOUBLE_EQ(e.meta.density, bar_pattern(3).topology.density());
  // A duplicate across process lifetimes still dedups: the index is rebuilt.
  EXPECT_FALSE(reopened.add(bar_pattern(2), {}).inserted);
  std::remove(path.c_str());
}

TEST(PatternStoreTest, DrcAmendmentPersists) {
  const std::string path = temp_path("store_drc.cppl");
  std::remove(path.c_str());
  {
    PatternStore store(path);
    store.add(bar_pattern(2), {});
    store.add(bar_pattern(3), {});
    store.set_drc(1, DrcStatus::kClean);
    store.set_drc(0, DrcStatus::kViolating);
    store.set_drc(1, DrcStatus::kViolating);  // last amendment wins
  }
  PatternStore reopened(path);
  EXPECT_EQ(reopened.at(0).meta.drc, DrcStatus::kViolating);
  EXPECT_EQ(reopened.at(1).meta.drc, DrcStatus::kViolating);
  Query q;
  q.drc = static_cast<int>(DrcStatus::kViolating);
  EXPECT_EQ(reopened.query(q).size(), 2u);
  std::remove(path.c_str());
}

TEST(PatternStoreTest, TornTailRecoveryIsBitIdentical) {
  const std::string path = temp_path("store_torn.cppl");
  std::remove(path.c_str());
  {
    PatternStore store(path);
    for (int bars = 1; bars <= 3; ++bars) store.add(bar_pattern(bars), {});
  }
  const std::string intact = util::read_file(path);

  for (const std::string& tail : {std::string("\x01garbage"), std::string(40, '\0'),
                                  std::string("\x02\x03\x04"), std::string(1, '\x01')}) {
    util::atomic_write_file(path, intact + tail);
    {
      // A crashed writer left a torn append: open recovers every complete
      // record and truncates the tail away.
      PatternStore recovered(path);
      EXPECT_EQ(recovered.size(), 3u);
      EXPECT_EQ(recovered.stats().recovered_bytes, tail.size());
    }
    // The truncation materialised: the file is bit-identical to the
    // pre-crash store, and a second open sees nothing to recover.
    EXPECT_EQ(util::read_file(path), intact);
    PatternStore again(path);
    EXPECT_EQ(again.stats().recovered_bytes, 0u);
  }
  std::remove(path.c_str());
}

TEST(PatternStoreTest, BitRotInsideValidPrefixThrows) {
  const std::string path = temp_path("store_rot.cppl");
  std::remove(path.c_str());
  {
    PatternStore store(path);
    store.add(bar_pattern(2), {});
    store.add(bar_pattern(3), {});
  }
  std::string data = util::read_file(path);
  data[20] = static_cast<char>(data[20] ^ 0x40);  // inside the first record's payload
  util::atomic_write_file(path, data);
  try {
    PatternStore store(path);
    FAIL() << "bit rot not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
  }
  std::remove(path.c_str());
}

TEST(PatternStoreTest, NotAStoreFileRejected) {
  const std::string path = temp_path("store_foreign.cppl");
  util::atomic_write_file(path, "definitely not a CPPL file");
  EXPECT_THROW(PatternStore store(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(PatternStoreTest, InjectedAppendFaultLeavesStoreConsistent) {
  const std::string path = temp_path("store_fault.cppl");
  std::remove(path.c_str());
  {
    PatternStore store(path);
    store.add(bar_pattern(2), {});
    util::fault::configure("pattlib/append=once:1");
    EXPECT_THROW(store.add(bar_pattern(3), {}), util::fault::FaultInjected);
    util::fault::clear();
  }
  PatternStore reopened(path);
  EXPECT_EQ(reopened.size(), 1u);
  std::remove(path.c_str());
}

TEST(PatternStoreTest, ExportBridges) {
  const std::string gds_path = temp_path("store_export.gds");
  const std::string pbm_dir = temp_path("store_export_pbm");
  PatternStore store;
  PatternMeta meta;
  meta.layer = 5;
  store.add(bar_pattern(2), meta);
  store.add(bar_pattern(3), meta);

  EXPECT_EQ(store.export_gds(gds_path, {0, 1}), 2);
  const io::GdsLibrary lib = io::read_gds(gds_path);
  ASSERT_EQ(lib.structures.size(), 2u);
  EXPECT_EQ(lib.structures[0].layer, 5);

  EXPECT_EQ(store.export_pbm(pbm_dir, {0, 1}), 3);  // 2 PBMs + manifest
  EXPECT_TRUE(std::filesystem::exists(pbm_dir + "/manifest.txt"));
  EXPECT_TRUE(std::filesystem::exists(pbm_dir + "/pattern_00000001.pbm"));
  std::remove(gds_path.c_str());
  std::filesystem::remove_all(pbm_dir);
}

}  // namespace
}  // namespace cp::pattlib
