// Windowing pass + streaming ingestion (pattlib/window.h, pattlib/ingest.h):
// grid arithmetic, density prefiltering, overlapping strides, and the
// GDS -> windows -> store pipeline with cross-structure dedup.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "io/gds.h"
#include "pattlib/ingest.h"
#include "util/fs.h"

namespace cp::pattlib {
namespace {

using geometry::Coord;
using geometry::Rect;

std::string temp_path(const std::string& name) { return ::testing::TempDir() + "/" + name; }

TEST(WindowTest, NonOverlappingTilingCoversTheBoundingBox) {
  // Four separated blobs, one per 1000-nm window corner of a 2x2 grid.
  std::vector<Rect> rects;
  for (const Coord base_x : {Coord{0}, Coord{1000}}) {
    for (const Coord base_y : {Coord{0}, Coord{1000}}) {
      rects.push_back({base_x + 100, base_y + 100, base_x + 400, base_y + 300});
    }
  }
  WindowConfig cfg;
  cfg.window_nm = 1000;
  std::vector<std::pair<Coord, Coord>> origins;
  const WindowStats stats = windows_over(
      rects, cfg, [&](squish::SquishPattern&& p, Coord wx, Coord wy) {
        EXPECT_TRUE(p.well_formed());
        origins.emplace_back(wx, wy);
      });
  EXPECT_EQ(stats.seen, 4);
  EXPECT_EQ(stats.kept, 4);
  ASSERT_EQ(origins.size(), 4u);
  // Deterministic row-major order, anchored at the bbox origin (100, 100).
  EXPECT_EQ(origins[0], (std::pair<Coord, Coord>{100, 100}));
  EXPECT_EQ(origins[1], (std::pair<Coord, Coord>{1100, 100}));
  EXPECT_EQ(origins[2], (std::pair<Coord, Coord>{100, 1100}));
  EXPECT_EQ(origins[3], (std::pair<Coord, Coord>{1100, 1100}));
}

TEST(WindowTest, SparseLayoutSkipsEmptyWindows) {
  // Two blobs 100 windows apart: seen counts the whole grid, kept only 2.
  const std::vector<Rect> rects = {{0, 0, 500, 500}, {100000, 0, 100500, 500}};
  WindowConfig cfg;
  cfg.window_nm = 1000;
  long long delivered = 0;
  const WindowStats stats =
      windows_over(rects, cfg, [&](squish::SquishPattern&&, Coord, Coord) { ++delivered; });
  EXPECT_EQ(stats.seen, 101);
  EXPECT_EQ(stats.kept, 2);
  EXPECT_EQ(delivered, 2);
}

TEST(WindowTest, DensityPrefilter) {
  const std::vector<Rect> rects = {{0, 0, 1000, 1000},        // density 1.0 window
                                   {2000, 0, 2100, 100}};     // density 0.01 window
  WindowConfig cfg;
  cfg.window_nm = 1000;
  cfg.min_density = 0.5;
  long long kept = 0;
  windows_over(rects, cfg, [&](squish::SquishPattern&&, Coord wx, Coord) {
    EXPECT_EQ(wx, 0);
    ++kept;
  });
  EXPECT_EQ(kept, 1);
  cfg.min_density = 0.0;
  cfg.max_density = 0.5;
  kept = 0;
  windows_over(rects, cfg, [&](squish::SquishPattern&&, Coord wx, Coord) {
    EXPECT_EQ(wx, 2000);
    ++kept;
  });
  EXPECT_EQ(kept, 1);
}

TEST(WindowTest, OverlappingStrideRevisitsGeometry) {
  const std::vector<Rect> rects = {{0, 0, 1800, 200}};
  WindowConfig cfg;
  cfg.window_nm = 1000;
  cfg.stride_nm = 500;
  long long kept = 0;
  windows_over(rects, cfg, [&](squish::SquishPattern&&, Coord, Coord) { ++kept; });
  // Strided grid over the 1800-nm bbox: windows at x = 0, 500, 1000 (the
  // last reaches past the far edge), every one intersecting the bar.
  EXPECT_EQ(kept, 3);
}

TEST(WindowTest, EnumeratesEmptyWindowsWhenAsked) {
  const std::vector<Rect> rects = {{0, 0, 100, 100}, {2500, 2500, 2600, 2600}};
  WindowConfig cfg;
  cfg.window_nm = 1000;
  cfg.skip_empty = false;
  long long delivered = 0;
  const WindowStats stats =
      windows_over(rects, cfg, [&](squish::SquishPattern&&, Coord, Coord) { ++delivered; });
  EXPECT_EQ(stats.seen, 9);
  EXPECT_EQ(delivered, 9);
  EXPECT_EQ(stats.kept, 9);
}

TEST(WindowTest, BadConfigsThrow) {
  const std::vector<Rect> rects = {{0, 0, 10, 10}};
  WindowConfig cfg;
  cfg.window_nm = 0;
  EXPECT_THROW(windows_over(rects, cfg, [](squish::SquishPattern&&, Coord, Coord) {}),
               std::invalid_argument);
  cfg.window_nm = 100;
  cfg.stride_nm = -1;
  EXPECT_THROW(windows_over(rects, cfg, [](squish::SquishPattern&&, Coord, Coord) {}),
               std::invalid_argument);
  // Empty input is a no-op, not an error.
  cfg.stride_nm = 0;
  const WindowStats stats =
      windows_over({}, cfg, [](squish::SquishPattern&&, Coord, Coord) { FAIL(); });
  EXPECT_EQ(stats.seen, 0);
}

/// Fixture mirroring tools/chatpattern_lib.cpp: `structures` structures
/// carrying `motifs` distinct motifs (bar stacks of different heights),
/// each motif placed twice per structure.
std::string write_fixture(const std::string& name, int structures, int motifs) {
  io::GdsLibrary lib;
  lib.name = "INGEST_FIXTURE";
  for (int s = 0; s < structures; ++s) {
    io::GdsStructure str;
    str.name = "CELL" + std::to_string(s);
    str.layer = 1 + (s % 2);
    const int bars = 2 + (s % motifs);
    for (const Coord base : {Coord{0}, Coord{4096}}) {
      for (int j = 0; j < bars; ++j) {
        const Coord y0 = 128 + static_cast<Coord>(j) * 256;
        str.rects.push_back({base, y0, base + 1024, y0 + 128});
      }
    }
    lib.structures.push_back(std::move(str));
  }
  const std::string path = temp_path(name);
  io::write_gds(path, lib);
  return path;
}

TEST(IngestTest, FixtureDedupAcrossStructuresAndRuns) {
  const std::string path = write_fixture("ingest_dedup.gds", 6, 3);
  PatternStore store;
  IngestConfig cfg;
  cfg.style_tag = "fixture";
  const IngestStats st = ingest_gds(path, store, cfg);
  EXPECT_EQ(st.structures, 6);
  EXPECT_EQ(st.windows_kept, 12);  // 2 populated windows per structure
  EXPECT_EQ(st.added, 3);          // 3 distinct motifs
  EXPECT_EQ(st.deduped, 9);
  EXPECT_GT(st.bytes_streamed, 0u);
  EXPECT_EQ(store.size(), 3u);
  const StoredPattern& e = store.at(0);
  EXPECT_EQ(e.meta.source, path);
  EXPECT_EQ(e.meta.structure, "CELL0");
  EXPECT_EQ(e.meta.style_tag, "fixture");
  EXPECT_EQ(e.meta.window_x, 0);

  // Re-ingesting the same file adds nothing.
  const IngestStats again = ingest_gds(path, store, cfg);
  EXPECT_EQ(again.added, 0);
  EXPECT_EQ(again.deduped, 12);
  EXPECT_EQ(store.size(), 3u);
  std::remove(path.c_str());
}

TEST(IngestTest, LayerFilterAndWindowCap) {
  const std::string path = write_fixture("ingest_filter.gds", 6, 3);
  {
    PatternStore store;
    IngestConfig cfg;
    cfg.layer = 2;  // structures 1, 3, 5 only
    const IngestStats st = ingest_gds(path, store, cfg);
    EXPECT_EQ(st.structures, 6);
    EXPECT_EQ(st.windows_kept, 6);
    for (std::size_t i = 0; i < store.size(); ++i) EXPECT_EQ(store.at(i).meta.layer, 2);
  }
  {
    PatternStore store;
    IngestConfig cfg;
    cfg.max_windows = 3;
    const IngestStats st = ingest_gds(path, store, cfg);
    EXPECT_EQ(st.windows_kept, 3);
    EXPECT_EQ(st.added + st.deduped, 3);
  }
  std::remove(path.c_str());
}

TEST(IngestTest, CorruptGdsFailsCleanlyStorePreserved) {
  const std::string path = write_fixture("ingest_corrupt.gds", 4, 2);
  std::string data;
  {
    data = util::read_file(path);
    data.resize(data.size() / 2);  // truncate mid-stream
    util::atomic_write_file(path, data);
  }
  PatternStore store;
  IngestConfig cfg;
  EXPECT_THROW(ingest_gds(path, store, cfg), std::runtime_error);
  // Structures delivered before the corruption point are kept.
  EXPECT_FALSE(store.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cp::pattlib
