// Integration tests for the agent's failure-recovery behaviour — the
// "Unseen Mistake-processing" capability of Section 4.2: legalization
// failures are fed back, the agent repairs the reported region in place and
// retries, dropping only as a last resort.

#include <gtest/gtest.h>

#include <algorithm>

#include "agent/chat_session.h"
#include "tests/agent/agent_fixture.h"

namespace cp::agent {
namespace {

using testing::AgentFixture;

class RecoveryTest : public AgentFixture {};

TEST_F(RecoveryTest, SessionRecoveryTranscriptMatchesPaperShape) {
  // A physically tight budget forces legalization failures; the session
  // transcript must show the Thought -> Action: Topology_Modification ->
  // Action Input with the failing region, exactly the paper's example shape.
  ExperienceStore exp;
  ChatSession session(&tools_,
                      std::make_unique<ScriptedBrain>(ScriptedBrain::Policy{0, 3, true}),
                      &store_, &exp, kWindow);
  // Budget below the requirement of any stripe sample, above the pitch
  // floor, so every legalization attempt fails and recovery is exercised.
  SessionReport report = session.handle(
      "Generate 2 patterns of 32x32 with physical size 40x40 nm in Layer-10001 style "
      "with seed 9.");
  ASSERT_EQ(report.subtasks.size(), 1u);
  const std::string& t = report.transcript;
  EXPECT_NE(t.find("Action: Topology_Modification"), std::string::npos) << t;
  EXPECT_NE(t.find("\"upper\""), std::string::npos);
  EXPECT_NE(t.find("\"style\""), std::string::npos);
  EXPECT_GT(report.subtasks[0].execution.stats.legalization_failures, 0);
}

TEST_F(RecoveryTest, ModificationTargetsReportedRegion) {
  // Drive the loop manually to verify the repair uses the observed region.
  // A stored stripe topology has deterministic interior constraints, so the
  // 40 nm budget is guaranteed to fail with a localized region.
  ScriptedBrain brain(ScriptedBrain::Policy{0, 2, true});
  const std::string stored_id = store_.put_topology(testing::stripes(kWindow, 6));

  util::Json legalize_args;
  legalize_args["topology_id"] = stored_id;
  legalize_args["width_nm"] = 40;  // below any structured requirement, above pitch
  legalize_args["height_nm"] = 4000;
  legalize_args["style"] = "Layer-10001";
  const ToolResult failed = tools_.call("topology_legalization", legalize_args);
  ASSERT_FALSE(failed.ok);

  AgentContext ctx;
  ctx.requirement.topo_rows = kWindow;
  ctx.requirement.topo_cols = kWindow;
  ctx.requirement.style = "Layer-10001";
  ctx.window = kWindow;
  ctx.current_topology_id = stored_id;
  ctx.legalization_failures = 1;
  ctx.last_error_log = failed.payload.get_string("log", "");
  ctx.last_error_region = failed.payload.at("region");
  const AgentAction act = brain.decide(ctx);
  ASSERT_EQ(act.action, "topology_modification");
  EXPECT_EQ(act.input.get_int("upper", -1), failed.payload.at("region").get_int("upper", -2));
  EXPECT_EQ(act.input.get_int("right", -1), failed.payload.at("region").get_int("right", -2));

  // The modification tool must accept exactly these arguments.
  const ToolResult repaired = tools_.call(act.action, act.input);
  EXPECT_TRUE(repaired.ok) << repaired.payload.dump();
}

TEST_F(RecoveryTest, ModificationRepairsInjectedDefect) {
  // The paper's core recovery claim: a topology that fails legalization
  // because of one pathological region can be fixed by re-generating just
  // that region (instead of discarding the whole pattern). Build a clean
  // period-4 stripe pattern (requirement ~ 500 nm under the 30/30 rules),
  // inject a checkerboard blob whose alternating runs push the x-chain past
  // the budget, and verify the agent's repair pipeline restores legality.
  squish::Topology t = testing::stripes(kWindow, 4);
  for (int r = 0; r < kWindow; ++r) {
    for (int c = 8; c < 24; ++c) t.set(r, c, c % 2);
  }
  const geometry::Coord budget = 460;
  const std::string id = store_.put_topology(t);

  util::Json legalize_args;
  legalize_args["topology_id"] = id;
  legalize_args["width_nm"] = static_cast<long long>(budget);
  legalize_args["height_nm"] = static_cast<long long>(budget);
  legalize_args["style"] = "Layer-10001";
  const ToolResult failed = tools_.call("topology_legalization", legalize_args);
  ASSERT_FALSE(failed.ok) << "the checkerboard must overflow the budget";
  const util::Json& region = failed.payload.at("region");
  // The reported region must overlap the injected defect columns.
  EXPECT_LT(region.get_int("left", 99), 24);
  EXPECT_GT(region.get_int("right", -1), 8);

  // Repair the reported region with the model, retrying seeds as the agent
  // would; the repaired pattern must legalize within a few attempts.
  bool fixed = false;
  std::string current = id;
  for (int attempt = 0; attempt < 6 && !fixed; ++attempt) {
    util::Json mod;
    mod["topology_id"] = current;
    mod["upper"] = region.get_int("upper", 0);
    mod["left"] = region.get_int("left", 0);
    mod["bottom"] = region.get_int("bottom", kWindow);
    mod["right"] = region.get_int("right", kWindow);
    mod["style"] = "Layer-10001";
    mod["seed"] = 42 + attempt;
    mod["steps"] = 8;
    const ToolResult repaired = tools_.call("topology_modification", mod);
    ASSERT_TRUE(repaired.ok) << repaired.payload.dump();
    current = repaired.payload.get_string("topology_id", "");
    util::Json again = legalize_args;
    again["topology_id"] = current;
    fixed = tools_.call("topology_legalization", again).ok;
  }
  EXPECT_TRUE(fixed) << "in-painting the failed region must restore legality";
}

TEST_F(RecoveryTest, SessionAccumulatesExperience) {
  ExperienceStore exp;
  ChatSession session(&tools_, std::make_unique<ScriptedBrain>(), &store_, &exp, kWindow);
  SessionReport report = session.handle(
      "Generate 2 patterns of 64x64 with physical size 8000x8000 nm in Layer-10001 style "
      "with seed 13.");
  ASSERT_EQ(report.subtasks.size(), 1u);
  ASSERT_GT(report.total_produced(), 0) << report.transcript;
  EXPECT_GT(exp.entry("Out", "Layer-10001", 64).attempts, 0)
      << "extension outcomes must be recorded";
}

TEST_F(RecoveryTest, DocumentsAvailableToSession) {
  ExperienceStore exp;
  ChatSession session(&tools_, std::make_unique<ScriptedBrain>(), &store_, &exp, kWindow);
  EXPECT_TRUE(session.documents().has("pipeline"));
}

}  // namespace
}  // namespace cp::agent
