// End-to-end integration: the ChatPattern facade driven purely through its
// natural-language front door, as a downstream user would.

#include <gtest/gtest.h>

#include "core/chatpattern.h"

namespace cp::core {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static ChatPattern& chat() {
    // Built once: training the backend takes a few seconds.
    static ChatPattern* instance = [] {
      ChatPatternConfig cfg;
      cfg.train_clips_per_class = 48;
      cfg.draws_per_bucket = 2;
      cfg.seed = 9;
      return new ChatPattern(cfg);
    }();
    return *instance;
  }
};

TEST_F(EndToEndTest, TrainingSetsAreBuilt) {
  EXPECT_EQ(chat().training_set(0).topologies.size(), 48u);
  EXPECT_EQ(chat().training_set(1).topologies.size(), 48u);
  EXPECT_EQ(chat().nm_per_cell(), 16);
}

TEST_F(EndToEndTest, CustomizeSimpleRequestProducesLegalLibrary) {
  agent::SessionReport report =
      chat().customize("Generate 4 patterns of 128x128 in Layer-10001 style with seed 3.");
  ASSERT_EQ(report.subtasks.size(), 1u);
  EXPECT_EQ(report.total_requested(), 4);
  EXPECT_EQ(report.total_produced(), 4) << report.transcript;

  const PatternLibrary lib = chat().library_of(report.subtasks[0]);
  ASSERT_EQ(lib.size(), 4u);
  const auto legality = lib.legality(chat().legalizer(0).rules());
  EXPECT_EQ(legality.legal, 4);
  EXPECT_EQ(lib.style(), "Layer-10001");
}

TEST_F(EndToEndTest, TranscriptShowsRequirementListAndPlan) {
  agent::SessionReport report =
      chat().customize("Generate 2 patterns of 128x128 in Layer-10003 style with seed 5.");
  EXPECT_NE(report.transcript.find("# Requirement - subtask 1"), std::string::npos);
  EXPECT_NE(report.transcript.find("Task Plan:"), std::string::npos);
  EXPECT_NE(report.transcript.find("Thought: "), std::string::npos);
  EXPECT_NE(report.transcript.find("Style: Layer-10003"), std::string::npos);
}

TEST_F(EndToEndTest, MultiSubtaskRequest) {
  agent::SessionReport report = chat().customize(
      "Generate 2 patterns of 128x128 in Layer-10001 style with seed 7. "
      "Then generate 2 patterns of 128x128 in Layer-10003 style with seed 8.");
  ASSERT_EQ(report.subtasks.size(), 2u);
  EXPECT_EQ(report.total_produced(), 4) << report.transcript;
  EXPECT_EQ(report.subtasks[0].requirement.style, "Layer-10001");
  EXPECT_EQ(report.subtasks[1].requirement.style, "Layer-10003");
}

TEST_F(EndToEndTest, FreeSizeRequestUsesExtension) {
  agent::SessionReport report =
      chat().customize("Generate 1 pattern of 256x256 in Layer-10003 style with seed 4.");
  ASSERT_EQ(report.subtasks.size(), 1u);
  EXPECT_EQ(report.total_produced(), 1) << report.transcript;
  EXPECT_NE(report.transcript.find("Topology_Extension"), std::string::npos);
  const PatternLibrary lib = chat().library_of(report.subtasks[0]);
  ASSERT_EQ(lib.size(), 1u);
  EXPECT_EQ(lib.at(0).topology.rows(), 256);
  EXPECT_EQ(lib.at(0).width_nm(), 256 * 16);
  EXPECT_EQ(lib.legality(chat().legalizer(1).rules()).legal, 1);
}

TEST_F(EndToEndTest, InvalidRequirementRejectedGracefully) {
  agent::SessionReport report = chat().customize("Generate 3 patterns in Layer-31337 style.");
  // Unknown style: either no subtask parsed or the subtask is rejected.
  EXPECT_EQ(report.total_produced(), 0);
}

TEST_F(EndToEndTest, EmptyRequestNoWork) {
  agent::SessionReport report = chat().customize("What a nice day.");
  EXPECT_TRUE(report.subtasks.empty());
  EXPECT_NE(report.transcript.find("No actionable sub-task"), std::string::npos);
}

TEST_F(EndToEndTest, LibraryExport) {
  agent::SessionReport report =
      chat().customize("Generate 2 patterns of 128x128 in Layer-10001 style with seed 12.");
  ASSERT_EQ(report.subtasks.size(), 1u);
  const PatternLibrary lib = chat().library_of(report.subtasks[0]);
  const std::string dir = ::testing::TempDir() + "/cp_export_test";
  const int files = lib.export_pbm(dir);
  EXPECT_EQ(files, static_cast<int>(lib.size()) + 1);  // patterns + manifest
}

TEST_F(EndToEndTest, DiversityAcrossSamplesNonZero) {
  agent::SessionReport report =
      chat().customize("Generate 8 patterns of 128x128 in Layer-10001 style with seed 21.");
  ASSERT_EQ(report.subtasks.size(), 1u);
  const PatternLibrary lib = chat().library_of(report.subtasks[0]);
  ASSERT_GE(lib.size(), 6u);
  EXPECT_GT(lib.diversity(), 0.5) << "samples must not all share one complexity";
}

}  // namespace
}  // namespace cp::core
