// Golden-file regression suite for the legalizer and the DRC checker.
//
// Each test renders a deterministic textual report of the module's output on
// fixed inputs and compares it byte-for-byte against a committed file under
// tests/golden/. Any behaviour change — constraint tightening, different
// failure localisation, message rewording — shows up as a readable diff.
//
// To regenerate after an intentional change:
//   CP_UPDATE_GOLDEN=1 ./build/tests/golden_test
// then review the diff of tests/golden/*.txt and commit it.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "drc/checker.h"
#include "drc/rules.h"
#include "golden_compare.h"
#include "legalize/legalizer.h"
#include "squish/squish.h"
#include "util/rng.h"

namespace cp {
namespace {

// ---- deterministic fixture inputs ---------------------------------------

squish::Topology stripes(int n, int period) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (c / period) % 2);
  }
  return t;
}

squish::Topology checker_board(int n) {
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, (r + c) % 2);
  }
  return t;
}

squish::Topology random_blob(int n, std::uint64_t seed, double fill) {
  util::Rng rng(seed);
  squish::Topology t(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) t.set(r, c, rng.bernoulli(fill) ? 1 : 0);
  }
  return t;
}

// ---- report rendering ----------------------------------------------------

void dump_topology(std::ostream& os, const squish::Topology& t) {
  for (int r = 0; r < t.rows(); ++r) {
    for (int c = 0; c < t.cols(); ++c) os << (t.at(r, c) ? '#' : '.');
    os << "\n";
  }
}

void dump_deltas(std::ostream& os, const char* label, const squish::DeltaVec& d) {
  os << label << " =";
  for (geometry::Coord v : d) os << " " << v;
  os << "\n";
}

void dump_legalize(std::ostream& os, const char* name, const legalize::Legalizer& legalizer,
                   const squish::Topology& t, geometry::Coord w, geometry::Coord h) {
  os << "== " << name << " (" << t.rows() << "x" << t.cols() << " -> " << w << "x" << h
     << " nm) ==\n";
  dump_topology(os, t);
  os << "required_width_nm = " << legalizer.required_width_nm(t) << "\n";
  os << "required_height_nm = " << legalizer.required_height_nm(t) << "\n";
  const legalize::LegalizeResult res = legalizer.legalize(t, w, h);
  if (res.ok()) {
    os << "status = LEGAL\n";
    dump_deltas(os, "dx", res.pattern->dx);
    dump_deltas(os, "dy", res.pattern->dy);
    os << "width_nm = " << res.pattern->width_nm()
       << " height_nm = " << res.pattern->height_nm() << "\n";
    const drc::DrcReport report = drc::check(*res.pattern, legalizer.rules());
    os << "drc_clean = " << (report.clean() ? "yes" : "NO") << "\n";
  } else {
    const legalize::LegalizeFailure& f = *res.failure;
    os << "status = FAIL axis=" << f.axis << " region=[" << f.row0 << "," << f.row1 << ")x["
       << f.col0 << "," << f.col1 << ")"
       << " required=" << f.required_nm << " available=" << f.available_nm << "\n";
    os << "message = " << f.message << "\n";
  }
  os << "\n";
}

void dump_drc(std::ostream& os, const char* name, const squish::SquishPattern& p,
              const drc::DesignRules& rules) {
  os << "== " << name << " ==\n";
  dump_topology(os, p.topology);
  dump_deltas(os, "dx", p.dx);
  dump_deltas(os, "dy", p.dy);
  const drc::DrcReport report = drc::check(p, rules);
  os << "violations = " << report.violations.size() << "\n";
  for (const drc::Violation& v : report.violations) {
    os << "  " << drc::to_string(v.kind) << " region=[" << v.row0 << "," << v.row1 << ")x["
       << v.col0 << "," << v.col1 << ") required=" << v.required_nm
       << " actual=" << v.actual_nm << " :: " << v.message << "\n";
  }
  const geometry::Rect region = report.violating_region_cells();
  os << "merged_region = [" << region.y0 << "," << region.y1 << ")x[" << region.x0 << ","
     << region.x1 << ")\n\n";
}

// ---- tests ---------------------------------------------------------------

TEST(GoldenTest, LegalizerLayer10001) {
  const legalize::Legalizer legalizer(drc::rules_for_style("Layer-10001"));
  std::stringstream ss;
  ss << "rules: " << drc::describe(legalizer.rules()) << "\n\n";
  dump_legalize(ss, "stripes-8x8-p2", legalizer, stripes(8, 2), 2048, 2048);
  dump_legalize(ss, "stripes-8x8-p3", legalizer, stripes(8, 3), 2048, 2048);
  dump_legalize(ss, "blob-12x12-seed9", legalizer, random_blob(12, 9, 0.45), 4096, 4096);
  dump_legalize(ss, "empty-4x4", legalizer, squish::Topology(4, 4), 512, 512);
  dump_legalize(ss, "full-4x4", legalizer, squish::Topology(4, 4, 1), 512, 512);
  // Too small a window: must fail with an explained region.
  dump_legalize(ss, "stripes-8x8-p2-toosmall", legalizer, stripes(8, 2), 96, 96);
  dump_legalize(ss, "checker-6x6-toosmall", legalizer, checker_board(6), 200, 200);
  golden_compare("legalizer_layer10001.txt", ss.str());
}

TEST(GoldenTest, LegalizerLayer10003) {
  const legalize::Legalizer legalizer(drc::rules_for_style("Layer-10003"));
  std::stringstream ss;
  ss << "rules: " << drc::describe(legalizer.rules()) << "\n\n";
  dump_legalize(ss, "stripes-8x8-p2", legalizer, stripes(8, 2), 4096, 4096);
  dump_legalize(ss, "blob-10x10-seed4", legalizer, random_blob(10, 4, 0.4), 4096, 4096);
  dump_legalize(ss, "blob-10x10-seed4-toosmall", legalizer, random_blob(10, 4, 0.4), 128, 128);
  golden_compare("legalizer_layer10003.txt", ss.str());
}

TEST(GoldenTest, DrcChecker) {
  const drc::DesignRules rules = drc::rules_for_style("Layer-10001");
  std::stringstream ss;
  ss << "rules: " << drc::describe(rules) << "\n\n";

  {  // Clean pattern: wide bars, wide spaces.
    squish::SquishPattern p;
    p.topology = stripes(4, 2);
    p.dx = squish::uniform_deltas(4, 512);
    p.dy = squish::uniform_deltas(4, 512);
    dump_drc(ss, "clean-stripes", p, rules);
  }
  {  // Width violation: one skinny column of metal.
    squish::SquishPattern p;
    p.topology = squish::Topology(3, 3);
    for (int r = 0; r < 3; ++r) p.topology.set(r, 1, 1);
    p.dx = {100, 10, 100};  // 10 nm wide arm < min_width
    p.dy = {100, 100, 100};
    dump_drc(ss, "skinny-column", p, rules);
  }
  {  // Space violation: two bars separated by a sliver.
    squish::SquishPattern p;
    p.topology = squish::Topology(3, 3);
    for (int r = 0; r < 3; ++r) {
      p.topology.set(r, 0, 1);
      p.topology.set(r, 2, 1);
    }
    p.dx = {200, 8, 200};  // 8 nm gap < min_space
    p.dy = {100, 100, 100};
    dump_drc(ss, "sliver-space", p, rules);
  }
  {  // Area violation: one tiny isolated square.
    squish::SquishPattern p;
    p.topology = squish::Topology(3, 3);
    p.topology.set(1, 1, 1);
    p.dx = {500, 60, 500};
    p.dy = {500, 60, 500};  // 60x60 = 3600 nm^2 < min_area
    dump_drc(ss, "tiny-island", p, rules);
  }
  {  // Compound: checkerboard sliver grid violating everything at once.
    squish::SquishPattern p;
    p.topology = checker_board(4);
    p.dx = {20, 20, 20, 20};
    p.dy = {20, 20, 20, 20};
    dump_drc(ss, "checkerboard-slivers", p, rules);
  }
  golden_compare("drc_layer10001.txt", ss.str());
}

}  // namespace
}  // namespace cp
