#pragma once
// Shared byte-for-byte golden-file comparison used by every test in the
// golden_test binary. Each caller renders a deterministic textual report and
// compares it against a committed file under tests/golden/.
//
// To regenerate after an intentional change:
//   CP_UPDATE_GOLDEN=1 ./build/tests/golden_test
// then review the diff of tests/golden/*.txt and commit it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "util/fs.h"

#ifndef CP_GOLDEN_DIR
#error "CP_GOLDEN_DIR must point at the committed golden files"
#endif

namespace cp {

inline void golden_compare(const std::string& name, const std::string& actual) {
  const std::string path = std::string(CP_GOLDEN_DIR) + "/" + name;
  if (std::getenv("CP_UPDATE_GOLDEN") != nullptr) {
    // Atomic regeneration: an interrupted update never leaves a half-written
    // golden file to confuse the next comparison run.
    ASSERT_NO_THROW(util::atomic_write_file(path, actual)) << "cannot write " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with CP_UPDATE_GOLDEN=1 to create it";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(actual, buffer.str())
      << "output drifted from " << path
      << "; if the change is intentional, regenerate with CP_UPDATE_GOLDEN=1";
}

}  // namespace cp
