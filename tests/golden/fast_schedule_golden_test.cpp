// Golden pinning of the few-step visited-timestep logic: the exact lists
// TimestepSchedule::make builds for every kind x budget, and the lists the
// CascadeSampler stages will walk (coarse chain, stochastic-refinement
// restart level and chain). Any change to the placement math — however
// subtle — shows up here as a readable diff instead of as a silent quality
// regression three benches later. Regenerate intentionally with
// CP_UPDATE_GOLDEN=1 (see golden_compare.h).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "diffusion/cascade.h"
#include "diffusion/tabular_denoiser.h"
#include "diffusion/timestep_schedule.h"
#include "golden_compare.h"

namespace cp {
namespace {

using diffusion::ScheduleKind;

void dump_steps(std::ostream& os, const std::string& label, const std::vector<int>& steps) {
  os << label << " (" << steps.size() << ") =";
  for (int k : steps) os << " " << k;
  os << "\n";
}

TEST(FastScheduleGoldenTest, TimestepPlacementAllKinds) {
  std::stringstream ss;
  for (const auto& [name, cfg] :
       {std::pair<const char*, diffusion::ScheduleConfig>{"K100", {100, 0.01, 0.5}},
        std::pair<const char*, diffusion::ScheduleConfig>{"K1000-paper", {1000, 0.01, 0.5}}}) {
    const diffusion::NoiseSchedule s{cfg};
    ss << "== schedule " << name << " ==\n";
    for (ScheduleKind kind : {ScheduleKind::kNoiseUniform, ScheduleKind::kUniformStride,
                              ScheduleKind::kQuadratic}) {
      for (int budget : {4, 10, 24}) {
        dump_steps(ss, std::string(to_string(kind)) + " budget=" + std::to_string(budget),
                   diffusion::TimestepSchedule::make(s, kind, s.steps(), budget));
      }
      // Partial chain, as the cascade refinement and modify_from use it.
      dump_steps(ss, std::string(to_string(kind)) + " from=40 budget=6",
                 diffusion::TimestepSchedule::make(s, kind, 40, 6));
    }
    ss << "\n";
  }
  golden_compare("fast_schedules.txt", ss.str());
}

TEST(FastScheduleGoldenTest, CascadeVisitedSteps) {
  const diffusion::NoiseSchedule s{diffusion::ScheduleConfig{}};
  diffusion::TabularConfig tcfg;
  tcfg.conditions = 1;
  // Unfitted denoisers: the visited-step lists are pure schedule math and
  // must not depend on model state.
  const diffusion::TabularDenoiser coarse(s, tcfg);
  const diffusion::TabularDenoiser fine(s, tcfg);

  std::stringstream ss;
  auto dump_cascade = [&](const char* name, const diffusion::CascadeConfig& cfg) {
    const diffusion::CascadeSampler cascade(s, coarse, fine, cfg);
    ss << "== " << name << " ==\n";
    ss << "schedule_kind = " << to_string(cfg.schedule_kind) << "\n";
    dump_steps(ss, "coarse", cascade.coarse_timesteps());
    ss << "refine_start_level = " << cascade.refine_start_level() << "\n";
    dump_steps(ss, "refine", cascade.refine_timesteps());
    ss << "\n";
  };

  dump_cascade("defaults", diffusion::CascadeConfig{});

  diffusion::CascadeConfig stochastic;
  stochastic.refine_flip = 0.15;
  dump_cascade("stochastic-refine", stochastic);

  for (ScheduleKind kind : {ScheduleKind::kUniformStride, ScheduleKind::kQuadratic}) {
    diffusion::CascadeConfig cfg;
    cfg.refine_flip = 0.15;
    cfg.schedule_kind = kind;
    dump_cascade((std::string("stochastic-refine-") + to_string(kind)).c_str(), cfg);
  }
  golden_compare("cascade_visited_steps.txt", ss.str());
}

}  // namespace
}  // namespace cp
