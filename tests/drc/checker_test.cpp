#include "drc/checker.h"

#include <gtest/gtest.h>

namespace cp::drc {
namespace {

using squish::DeltaVec;
using squish::SquishPattern;
using squish::Topology;

DesignRules test_rules() {
  DesignRules r;
  r.min_space_nm = 40;
  r.min_width_nm = 40;
  r.min_area_nm2 = 1600;
  r.pitch_nm = 1;
  return r;
}

/// Pattern with an interior shape of the given physical width/height inside
/// a 5x5 grid (shape occupies the centre cell).
SquishPattern centered_shape(geometry::Coord w, geometry::Coord h) {
  SquishPattern p;
  p.topology = Topology(3, 3);
  p.topology.set(1, 1, 1);
  p.dx = {100, w, 100};
  p.dy = {100, h, 100};
  return p;
}

TEST(CheckerTest, CleanPattern) {
  const DrcReport report = check(centered_shape(50, 60), test_rules());
  EXPECT_TRUE(report.clean());
}

TEST(CheckerTest, WidthViolationX) {
  const DrcReport report = check(centered_shape(30, 60), test_rules());
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kWidth);
  EXPECT_EQ(report.violations[0].required_nm, 40);
  EXPECT_EQ(report.violations[0].actual_nm, 30);
}

TEST(CheckerTest, WidthViolationY) {
  const DrcReport report = check(centered_shape(60, 25), test_rules());
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kWidth);
}

TEST(CheckerTest, AreaViolation) {
  // 40x40 = 1600 passes exactly; shrink area rule boundary via a taller rule.
  DesignRules r = test_rules();
  r.min_area_nm2 = 2000;
  const DrcReport report = check(centered_shape(40, 40), r);
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kArea);
  EXPECT_EQ(report.violations[0].actual_nm, 1600);
}

TEST(CheckerTest, SpaceViolation) {
  // Two shapes in one row separated by a 20 nm gap.
  SquishPattern p;
  p.topology = Topology(3, 5);
  p.topology.set(1, 1, 1);
  p.topology.set(1, 3, 1);
  p.dx = {100, 50, 20, 50, 100};
  p.dy = {100, 50, 100};
  const DrcReport report = check(p, test_rules());
  ASSERT_FALSE(report.clean());
  bool found_space = false;
  for (const auto& v : report.violations) {
    if (v.kind == ViolationKind::kSpace) {
      found_space = true;
      EXPECT_EQ(v.actual_nm, 20);
    }
  }
  EXPECT_TRUE(found_space);
}

TEST(CheckerTest, BorderShapesExemptFromWidthAndArea) {
  // A thin sliver touching the left border: clipped shape, exempt.
  SquishPattern p;
  p.topology = Topology(3, 3);
  p.topology.set(1, 0, 1);
  p.dx = {10, 100, 100};
  p.dy = {100, 100, 100};
  EXPECT_TRUE(check(p, test_rules()).clean());
}

TEST(CheckerTest, BorderGapNotASpaceViolation) {
  // A 0-run touching the border is not between two shapes.
  SquishPattern p;
  p.topology = Topology(1, 2);
  p.topology.set(0, 1, 1);
  p.dx = {5, 200};
  p.dy = {200};
  EXPECT_TRUE(check(p, test_rules()).clean());
}

TEST(CheckerTest, PitchViolation) {
  DesignRules r = test_rules();
  r.pitch_nm = 8;
  SquishPattern p;
  p.topology = Topology(1, 2, 1);
  p.dx = {4, 200};
  p.dy = {200};
  const DrcReport report = check(p, r);
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].kind, ViolationKind::kPitch);
}

TEST(CheckerTest, ViolatingRegionBoundsAllViolations) {
  const DrcReport report = check(centered_shape(30, 25), test_rules());
  ASSERT_FALSE(report.clean());
  const geometry::Rect region = report.violating_region_cells();
  EXPECT_EQ(region.x0, 1);
  EXPECT_EQ(region.y0, 1);
  EXPECT_EQ(region.x1, 2);
  EXPECT_EQ(region.y1, 2);
}

TEST(CheckerTest, ViolationMessagesAreInformative) {
  const DrcReport report = check(centered_shape(30, 60), test_rules());
  ASSERT_FALSE(report.clean());
  const std::string& msg = report.violations[0].message;
  EXPECT_NE(msg.find("width"), std::string::npos);
  EXPECT_NE(msg.find("40"), std::string::npos);
  EXPECT_NE(msg.find("30"), std::string::npos);
}

TEST(CheckerTest, RowRunsExtraction) {
  Topology t(1, 6);
  t.set(0, 1, 1);
  t.set(0, 2, 1);
  t.set(0, 4, 1);
  const auto ones = row_runs(t, 0, 1);
  ASSERT_EQ(ones.size(), 2u);
  EXPECT_EQ(ones[0], std::make_pair(1, 3));
  EXPECT_EQ(ones[1], std::make_pair(4, 5));
  const auto zeros = row_runs(t, 0, 0);
  ASSERT_EQ(zeros.size(), 3u);
}

TEST(CheckerTest, ColRunsExtraction) {
  Topology t(5, 1);
  t.set(1, 0, 1);
  t.set(2, 0, 1);
  const auto ones = col_runs(t, 0, 1);
  ASSERT_EQ(ones.size(), 1u);
  EXPECT_EQ(ones[0], std::make_pair(1, 3));
}

TEST(CheckerTest, MultipleViolationsAllReported) {
  // Two thin interior shapes -> at least two width violations.
  SquishPattern p;
  p.topology = Topology(3, 5);
  p.topology.set(1, 1, 1);
  p.topology.set(1, 3, 1);
  p.dx = {100, 10, 100, 10, 100};
  p.dy = {100, 50, 100};
  const DrcReport report = check(p, test_rules());
  int width_violations = 0;
  for (const auto& v : report.violations) {
    width_violations += v.kind == ViolationKind::kWidth;
  }
  EXPECT_GE(width_violations, 2);
}

}  // namespace
}  // namespace cp::drc
