#include "drc/rules.h"

#include <gtest/gtest.h>

namespace cp::drc {
namespace {

TEST(RulesTest, KnownStyles) {
  const DesignRules a = rules_for_style("Layer-10001");
  EXPECT_GT(a.min_space_nm, 0);
  EXPECT_GT(a.min_width_nm, 0);
  EXPECT_GT(a.min_area_nm2, 0);
  const DesignRules b = rules_for_style("Layer-10003");
  EXPECT_NE(a, b);
  EXPECT_GT(b.min_width_nm, a.min_width_nm) << "Layer-10003 is the wide-feature layer";
}

TEST(RulesTest, NameVariantsAccepted) {
  EXPECT_EQ(rules_for_style("layer-10001"), rules_for_style("10001"));
  EXPECT_EQ(rules_for_style("LAYER10003"), rules_for_style("Layer-10003"));
}

TEST(RulesTest, UnknownStyleThrows) {
  EXPECT_THROW(rules_for_style("Layer-99999"), std::invalid_argument);
  EXPECT_THROW(rules_for_style(""), std::invalid_argument);
}

TEST(RulesTest, DescribeMentionsAllRules) {
  const std::string d = describe(rules_for_style("Layer-10001"));
  EXPECT_NE(d.find("space"), std::string::npos);
  EXPECT_NE(d.find("width"), std::string::npos);
  EXPECT_NE(d.find("area"), std::string::npos);
}

}  // namespace
}  // namespace cp::drc
