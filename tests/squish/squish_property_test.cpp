// Property-based round-trip suite for the squish codec: 500 randomized
// rectilinear layouts, each checked for the invariants the rest of the
// pipeline relies on (squish -> unsquish -> squish is the identity, area is
// preserved, the pattern is well-formed and spans the window).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "squish/squish.h"
#include "util/rng.h"

namespace cp::squish {
namespace {

using geometry::Coord;
using geometry::Rect;

std::vector<Rect> canon(std::vector<Rect> rects) {
  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    return std::tie(a.y0, a.x0, a.y1, a.x1) < std::tie(b.y0, b.x0, b.y1, b.x1);
  });
  return rects;
}

/// A random set of non-overlapping rects: pick distinct cells of a coarse
/// grid and place one inset rect per cell, with randomized size/offset so
/// the scan lines land on irregular coordinates.
std::vector<Rect> random_rects(util::Rng& rng, int grid, Coord cell, int count) {
  std::vector<Rect> rects;
  std::set<std::pair<int, int>> used;
  for (int i = 0; i < count; ++i) {
    const int cx = rng.uniform_int(0, grid - 1);
    const int cy = rng.uniform_int(0, grid - 1);
    if (!used.insert({cx, cy}).second) continue;
    const Coord max_span = cell - 2;
    const Coord w = rng.uniform_int(1, static_cast<int>(max_span));
    const Coord h = rng.uniform_int(1, static_cast<int>(max_span));
    const Coord ox = rng.uniform_int(1, static_cast<int>(cell - 1 - w));
    const Coord oy = rng.uniform_int(1, static_cast<int>(cell - 1 - h));
    const Coord x0 = cx * cell + ox;
    const Coord y0 = cy * cell + oy;
    rects.push_back(Rect{x0, y0, x0 + w, y0 + h});
  }
  return rects;
}

TEST(SquishPropertyTest, RoundTrip500RandomLayouts) {
  util::Rng rng(0xC0DEC);
  for (int trial = 0; trial < 500; ++trial) {
    const int grid = rng.uniform_int(2, 6);
    const Coord cell = rng.uniform_int(20, 120);
    const int count = rng.uniform_int(0, grid * grid);
    const std::vector<Rect> rects = random_rects(rng, grid, cell, count);
    const Rect window{0, 0, grid * cell, grid * cell};

    const SquishPattern p = squish(rects, window);
    ASSERT_TRUE(p.well_formed()) << "trial " << trial;
    ASSERT_EQ(p.width_nm(), window.width()) << "trial " << trial;
    ASSERT_EQ(p.height_nm(), window.height()) << "trial " << trial;

    // Exact geometry round-trip: the reconstruction is the same rect set
    // (the generator never produces touching/overlapping rects, so the
    // maximal decomposition is unique up to ordering).
    const std::vector<Rect> rebuilt = unsquish(p);
    ASSERT_EQ(canon(rebuilt), canon(rects)) << "trial " << trial;

    // Codec idempotence: squishing the reconstruction reproduces the
    // pattern bit-for-bit.
    const SquishPattern p2 = squish(rebuilt, window);
    ASSERT_EQ(p2.topology, p.topology) << "trial " << trial;
    ASSERT_EQ(p2.dx, p.dx) << "trial " << trial;
    ASSERT_EQ(p2.dy, p.dy) << "trial " << trial;

    // Area conservation, cross-checked against the delta vectors.
    Coord area_in = 0;
    for (const Rect& r : rects) area_in += r.area();
    Coord area_cells = 0;
    for (int r = 0; r < p.topology.rows(); ++r) {
      for (int c = 0; c < p.topology.cols(); ++c) {
        if (p.topology.at(r, c)) {
          area_cells += p.dy[static_cast<std::size_t>(r)] * p.dx[static_cast<std::size_t>(c)];
        }
      }
    }
    ASSERT_EQ(area_cells, area_in) << "trial " << trial;
  }
}

TEST(SquishPropertyTest, TouchingRectsMergeButPreserveArea) {
  // Abutting rects form one polygon; the decomposition may differ from the
  // input rect list, but coverage (area) and idempotence must still hold.
  util::Rng rng(0xFACADE);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Rect> rects;
    Coord x = 0;
    const Coord y0 = rng.uniform_int(0, 40);
    const Coord y1 = y0 + rng.uniform_int(10, 60);
    const int segments = rng.uniform_int(2, 5);
    for (int s = 0; s < segments; ++s) {
      const Coord w = rng.uniform_int(5, 50);
      rects.push_back(Rect{x, y0, x + w, y1});  // horizontally abutting strip
      x += w;
    }
    const Rect window{0, 0, x + 10, 120};
    const SquishPattern p = squish(rects, window);
    Coord area_in = 0;
    for (const Rect& r : rects) area_in += r.area();
    Coord area_out = 0;
    for (const Rect& r : unsquish(p)) area_out += r.area();
    ASSERT_EQ(area_out, area_in) << "trial " << trial;
    // The input rect list carries scan lines at internal abutting edges, so
    // the first squish is not minimal; one round-trip reaches the fixed
    // point (unsquish merges the strips into one polygon).
    const SquishPattern p2 = squish(unsquish(p), window);
    EXPECT_LE(p2.topology.cols(), p.topology.cols()) << "trial " << trial;
    const SquishPattern p3 = squish(unsquish(p2), window);
    ASSERT_EQ(p3.topology, p2.topology) << "trial " << trial;
    ASSERT_EQ(p3.dx, p2.dx) << "trial " << trial;
    ASSERT_EQ(p3.dy, p2.dy) << "trial " << trial;
    Coord area_min = 0;
    for (const Rect& r : unsquish(p2)) area_min += r.area();
    ASSERT_EQ(area_min, area_in) << "trial " << trial;
  }
}

}  // namespace
}  // namespace cp::squish
