// Property suite for the bit-packed Topology (docs/GRID.md): every packed
// grid operation is checked against squish::ByteTopology, the retained
// byte-per-cell reference implementation, on randomized shapes that stress
// the word layout — cols % 64 in {0, 1, 63}, single-word rows, multi-word
// rows, and tiny degenerate grids.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "squish/reference.h"
#include "squish/topology.h"
#include "util/rng.h"

namespace cp::squish {
namespace {

// Shapes chosen to cover the packed edge cases: exact word multiples,
// one-past and one-short of a word boundary, sub-word rows, and 1-wide /
// 1-tall degenerates.
struct Shape {
  int rows;
  int cols;
};
constexpr Shape kShapes[] = {
    {1, 1},  {3, 7},   {5, 63},  {4, 64},  {2, 65},   {7, 127},
    {3, 128}, {6, 129}, {17, 40}, {64, 64}, {1, 200},  {33, 1},
};

/// Build the same random grid in both representations.
void random_pair(util::Rng& rng, int rows, int cols, double density, Topology* t,
                 ByteTopology* b) {
  *t = Topology(rows, cols);
  *b = ByteTopology(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const std::uint8_t v = rng.bernoulli(density) ? 1 : 0;
      t->set(r, c, v);
      b->set(r, c, v);
    }
  }
}

/// Every cell of the packed grid equals the byte reference.
::testing::AssertionResult cells_equal(const Topology& t, const ByteTopology& b) {
  if (t.rows() != b.rows() || t.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape " << t.rows() << "x" << t.cols() << " vs " << b.rows() << "x" << b.cols();
  }
  for (int r = 0; r < t.rows(); ++r) {
    for (int c = 0; c < t.cols(); ++c) {
      if (t.at(r, c) != b.at(r, c)) {
        return ::testing::AssertionFailure()
               << "cell (" << r << "," << c << "): packed " << int(t.at(r, c)) << " byte "
               << int(b.at(r, c));
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(TopologyPropertyTest, RoundTripAndPopcountMatchReference) {
  util::Rng rng(101);
  for (const Shape& s : kShapes) {
    for (double density : {0.0, 0.15, 0.5, 1.0}) {
      Topology t;
      ByteTopology b;
      random_pair(rng, s.rows, s.cols, density, &t, &b);
      EXPECT_TRUE(cells_equal(t, b));
      EXPECT_EQ(t, b.packed()) << s.rows << "x" << s.cols;
      EXPECT_EQ(ByteTopology(t), b) << s.rows << "x" << s.cols;
      EXPECT_EQ(t.popcount(), b.popcount());
      EXPECT_DOUBLE_EQ(t.density(), b.density());
    }
  }
}

TEST(TopologyPropertyTest, WindowMatchesReference) {
  util::Rng rng(102);
  for (const Shape& s : kShapes) {
    Topology t;
    ByteTopology b;
    random_pair(rng, s.rows, s.cols, 0.4, &t, &b);
    for (int trial = 0; trial < 8; ++trial) {
      const int r0 = rng.uniform_int(0, s.rows - 1);
      const int r1 = rng.uniform_int(r0 + 1, s.rows);
      const int c0 = rng.uniform_int(0, s.cols - 1);
      const int c1 = rng.uniform_int(c0 + 1, s.cols);
      EXPECT_EQ(t.window(r0, c0, r1, c1), b.window(r0, c0, r1, c1).packed())
          << s.rows << "x" << s.cols << " window [" << r0 << "," << r1 << ")x[" << c0 << ","
          << c1 << ")";
    }
  }
}

TEST(TopologyPropertyTest, PasteMatchesReference) {
  util::Rng rng(103);
  for (const Shape& s : kShapes) {
    for (int trial = 0; trial < 8; ++trial) {
      Topology t, tile;
      ByteTopology b, btile;
      random_pair(rng, s.rows, s.cols, 0.4, &t, &b);
      const int tr = rng.uniform_int(1, s.rows);
      const int tc = rng.uniform_int(1, s.cols);
      random_pair(rng, tr, tc, 0.6, &tile, &btile);
      // Offsets deliberately run past the border to exercise clipping.
      const int r0 = rng.uniform_int(0, s.rows - 1);
      const int c0 = rng.uniform_int(0, s.cols - 1);
      t.paste(tile, r0, c0);
      b.paste(btile, r0, c0);
      EXPECT_EQ(t, b.packed()) << s.rows << "x" << s.cols << " paste " << tr << "x" << tc
                               << " at (" << r0 << "," << c0 << ")";
    }
  }
}

TEST(TopologyPropertyTest, TransposeAndFlipsMatchReference) {
  util::Rng rng(104);
  for (const Shape& s : kShapes) {
    Topology t;
    ByteTopology b;
    random_pair(rng, s.rows, s.cols, 0.5, &t, &b);
    EXPECT_EQ(t.transposed(), b.transposed().packed()) << s.rows << "x" << s.cols;
    EXPECT_EQ(t.flipped_horizontal(), b.flipped_horizontal().packed()) << s.rows << "x" << s.cols;
    EXPECT_EQ(t.flipped_vertical(), b.flipped_vertical().packed()) << s.rows << "x" << s.cols;
    EXPECT_EQ(t.transposed().transposed(), t);
    EXPECT_EQ(t.flipped_horizontal().flipped_horizontal(), t);
  }
}

TEST(TopologyPropertyTest, RowColEqualityAndDedupMatchReference) {
  util::Rng rng(105);
  for (const Shape& s : kShapes) {
    Topology t;
    ByteTopology b;
    random_pair(rng, s.rows, s.cols, 0.3, &t, &b);
    // Force some duplicate rows/columns so both branches are exercised.
    if (s.rows >= 2) {
      for (int c = 0; c < s.cols; ++c) {
        t.set(1, c, t.at(0, c));
        b.set(1, c, b.at(0, c));
      }
    }
    if (s.cols >= 2) {
      for (int r = 0; r < s.rows; ++r) {
        t.set(r, 1, t.at(r, 0));
        b.set(r, 1, b.at(r, 0));
      }
    }
    for (int a = 0; a < s.rows; ++a) {
      for (int c = 0; c < s.rows; ++c) {
        EXPECT_EQ(t.rows_equal(a, c), b.rows_equal(a, c)) << a << "," << c;
      }
    }
    const int col_probe = std::min(s.cols, 8);
    for (int a = 0; a < col_probe; ++a) {
      for (int c = 0; c < col_probe; ++c) {
        EXPECT_EQ(t.cols_equal(a, c), b.cols_equal(a, c)) << a << "," << c;
      }
    }
    EXPECT_EQ(t.deduplicated(), b.deduplicated().packed()) << s.rows << "x" << s.cols;
  }
}

TEST(TopologyPropertyTest, BytesRoundTrip) {
  util::Rng rng(106);
  for (const Shape& s : kShapes) {
    Topology t;
    ByteTopology b;
    random_pair(rng, s.rows, s.cols, 0.5, &t, &b);
    const std::vector<std::uint8_t> bytes = t.to_bytes();
    ASSERT_EQ(bytes.size(), t.size());
    for (int r = 0; r < s.rows; ++r) {
      for (int c = 0; c < s.cols; ++c) {
        EXPECT_EQ(bytes[static_cast<std::size_t>(r) * s.cols + c], b.at(r, c));
      }
    }
    EXPECT_EQ(Topology::from_bytes(s.rows, s.cols, bytes.data(), bytes.size()), t);
  }
}

// Satellite fix: non-{0,1} input cannot cross the packed boundary. from_bytes
// is the only byte-oriented constructor, and it validates.
TEST(TopologyPropertyTest, FromBytesRejectsNonBinaryAndBadSize) {
  const std::uint8_t ok[4] = {0, 1, 1, 0};
  EXPECT_NO_THROW(Topology::from_bytes(2, 2, ok, 4));
  const std::uint8_t bad[4] = {0, 1, 2, 0};
  EXPECT_THROW(Topology::from_bytes(2, 2, bad, 4), std::invalid_argument);
  const std::uint8_t high[4] = {0, 1, 255, 0};
  EXPECT_THROW(Topology::from_bytes(2, 2, high, 4), std::invalid_argument);
  EXPECT_THROW(Topology::from_bytes(2, 2, ok, 3), std::invalid_argument);
  EXPECT_THROW(Topology::from_bytes(3, 2, ok, 4), std::invalid_argument);
}

// The tail-mask invariant survives the word-parallel mutation primitive:
// xor_word with an all-ones mask on the last word must not disturb padding
// bits, so equality against a cell-wise-built complement still holds.
TEST(TopologyPropertyTest, XorWordPreservesTailInvariant) {
  for (int cols : {1, 63, 64, 65, 129}) {
    Topology t(3, cols);
    util::Rng rng(107);
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < cols; ++c) t.set(r, c, rng.bernoulli(0.5));
    }
    Topology flipped = t;
    for (int r = 0; r < 3; ++r) {
      for (int w = 0; w < t.words_per_row(); ++w) flipped.xor_word(r, w, ~std::uint64_t{0});
    }
    Topology expected(3, cols);
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < cols; ++c) expected.set(r, c, t.at(r, c) ? 0 : 1);
    }
    EXPECT_EQ(flipped, expected) << "cols " << cols;
    // Double-flip restores the original exactly (word-level involution).
    for (int r = 0; r < 3; ++r) {
      for (int w = 0; w < t.words_per_row(); ++w) flipped.xor_word(r, w, ~std::uint64_t{0});
    }
    EXPECT_EQ(flipped, t) << "cols " << cols;
  }
}

TEST(TopologyPropertyTest, EqualityIsCellwise) {
  util::Rng rng(108);
  for (const Shape& s : kShapes) {
    Topology t;
    ByteTopology b;
    random_pair(rng, s.rows, s.cols, 0.5, &t, &b);
    Topology u = t;
    EXPECT_EQ(u, t);
    const int r = rng.uniform_int(0, s.rows - 1);
    const int c = rng.uniform_int(0, s.cols - 1);
    u.set(r, c, u.at(r, c) ? 0 : 1);
    EXPECT_NE(u, t);
    u.set(r, c, t.at(r, c));
    EXPECT_EQ(u, t);
  }
}

}  // namespace
}  // namespace cp::squish
