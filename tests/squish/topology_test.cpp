#include "squish/topology.h"

#include <gtest/gtest.h>

namespace cp::squish {
namespace {

TEST(TopologyTest, ConstructionAndFill) {
  Topology t(3, 5);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 5);
  EXPECT_EQ(t.size(), 15u);
  EXPECT_EQ(t.popcount(), 0u);
  Topology full(2, 2, 1);
  EXPECT_EQ(full.popcount(), 4u);
  EXPECT_DOUBLE_EQ(full.density(), 1.0);
}

TEST(TopologyTest, SetNormalizesToBinary) {
  Topology t(1, 1);
  t.set(0, 0, 7);
  EXPECT_EQ(t.at(0, 0), 1);
}

TEST(TopologyTest, WindowExtraction) {
  Topology t(4, 4);
  t.set(1, 2, 1);
  const Topology w = t.window(1, 1, 3, 4);
  EXPECT_EQ(w.rows(), 2);
  EXPECT_EQ(w.cols(), 3);
  EXPECT_EQ(w.at(0, 1), 1);
  EXPECT_EQ(w.popcount(), 1u);
}

TEST(TopologyTest, WindowBoundsChecked) {
  Topology t(4, 4);
  EXPECT_THROW(t.window(0, 0, 5, 4), std::out_of_range);
  EXPECT_THROW(t.window(-1, 0, 4, 4), std::out_of_range);
  EXPECT_THROW(t.window(2, 2, 1, 4), std::out_of_range);
}

TEST(TopologyTest, PasteClipsAtBorder) {
  Topology t(4, 4);
  Topology tile(2, 2, 1);
  t.paste(tile, 3, 3);  // only 1 cell fits
  EXPECT_EQ(t.popcount(), 1u);
  EXPECT_EQ(t.at(3, 3), 1);
  t.paste(tile, -1, -1);  // only bottom-right cell of tile lands
  EXPECT_EQ(t.at(0, 0), 1);
}

TEST(TopologyTest, TransformsAreInvolutions) {
  Topology t(3, 4);
  t.set(0, 1, 1);
  t.set(2, 3, 1);
  EXPECT_EQ(t.flipped_horizontal().flipped_horizontal(), t);
  EXPECT_EQ(t.flipped_vertical().flipped_vertical(), t);
  EXPECT_EQ(t.transposed().transposed(), t);
  EXPECT_EQ(t.transposed().rows(), 4);
  EXPECT_EQ(t.transposed().at(1, 0), 1);
}

TEST(TopologyTest, DeduplicatedRemovesAdjacentDuplicates) {
  // Columns: A A B B A -> A B A; rows: X X -> X.
  Topology t(2, 5);
  for (int r = 0; r < 2; ++r) {
    t.set(r, 2, 1);
    t.set(r, 3, 1);
  }
  const Topology d = t.deduplicated();
  EXPECT_EQ(d.rows(), 1);
  EXPECT_EQ(d.cols(), 3);
  EXPECT_EQ(d.at(0, 0), 0);
  EXPECT_EQ(d.at(0, 1), 1);
  EXPECT_EQ(d.at(0, 2), 0);
}

TEST(TopologyTest, ComplexityOfUniformIsOne) {
  Topology t(8, 8, 1);
  const auto [cx, cy] = t.complexity();
  EXPECT_EQ(cx, 1);
  EXPECT_EQ(cy, 1);
}

TEST(TopologyTest, ComplexityCountsScanLineStructure) {
  // Vertical stripes of width 2: 4 distinct column groups on 8 cols.
  Topology t(4, 8);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 8; ++c) t.set(r, c, (c / 2) % 2);
  }
  const auto [cx, cy] = t.complexity();
  EXPECT_EQ(cx, 4);
  EXPECT_EQ(cy, 1);
}

TEST(TopologyTest, AsciiArt) {
  Topology t(2, 2);
  t.set(0, 0, 1);
  EXPECT_EQ(t.to_ascii(), "#.\n..\n");
}

TEST(TopologyTest, PbmFormat) {
  Topology t(1, 2);
  t.set(0, 1, 1);
  EXPECT_EQ(t.to_pbm(), "P1\n2 1\n0 1\n");
}

TEST(TopologyTest, DownsampleMajority) {
  Topology t(4, 4);
  // Top-left 2x2 block: 3 ones of 4 -> 1. Others sparse -> 0.
  t.set(0, 0, 1);
  t.set(0, 1, 1);
  t.set(1, 0, 1);
  t.set(2, 3, 1);
  const Topology d = downsample_majority(t, 2);
  EXPECT_EQ(d.rows(), 2);
  EXPECT_EQ(d.at(0, 0), 1);
  EXPECT_EQ(d.at(0, 1), 0);
  EXPECT_EQ(d.at(1, 1), 0);
}

TEST(TopologyTest, DownsampleRequiresDivisibility) {
  Topology t(5, 4);
  EXPECT_THROW(downsample_majority(t, 2), std::invalid_argument);
}

TEST(TopologyTest, UpsampleThenDownsampleIsIdentity) {
  Topology t(3, 3);
  t.set(0, 0, 1);
  t.set(1, 2, 1);
  t.set(2, 1, 1);
  EXPECT_EQ(downsample_majority(upsample_nearest(t, 4), 4), t);
}

}  // namespace
}  // namespace cp::squish
