#include "squish/normalize.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cp::squish {
namespace {

using geometry::Rect;

SquishPattern sample_pattern() {
  return squish({{20, 30, 60, 70}, {100, 30, 140, 130}}, Rect{0, 0, 200, 150});
}

TEST(NormalizeTest, MergeInvertsPadding) {
  const SquishPattern original = sample_pattern();
  const auto padded = normalize_to(original, 16);
  ASSERT_TRUE(padded.has_value());
  const SquishPattern merged = merge_redundant_lines(*padded);
  EXPECT_EQ(merged.topology, original.topology);
  EXPECT_EQ(merged.dx, original.dx);
  EXPECT_EQ(merged.dy, original.dy);
}

TEST(NormalizeTest, PadsToExactSize) {
  const auto p = normalize_to(sample_pattern(), 32);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->topology.rows(), 32);
  EXPECT_EQ(p->topology.cols(), 32);
  EXPECT_TRUE(p->well_formed());
}

TEST(NormalizeTest, PreservesPhysicalExtent) {
  const SquishPattern original = sample_pattern();
  const auto p = normalize_to(original, 24);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->width_nm(), original.width_nm());
  EXPECT_EQ(p->height_nm(), original.height_nm());
}

TEST(NormalizeTest, PreservesGeometryExactly) {
  const SquishPattern original = sample_pattern();
  const auto p = normalize_to(original, 40);
  ASSERT_TRUE(p.has_value());
  // The physical rects must be identical after normalisation.
  auto canon = [](std::vector<Rect> v) {
    std::sort(v.begin(), v.end(), [](const Rect& a, const Rect& b) {
      return std::tie(a.y0, a.x0) < std::tie(b.y0, b.x0);
    });
    return v;
  };
  EXPECT_EQ(canon(unsquish(*p)), canon(unsquish(original)));
}

TEST(NormalizeTest, RejectsTooComplexPattern) {
  // 20 distinct stripes -> minimal form is 40+ columns; target 16 fails.
  std::vector<Rect> rects;
  for (int i = 0; i < 20; ++i) rects.push_back(Rect{i * 100, 0, i * 100 + 40, 1000});
  const SquishPattern p = squish(rects, Rect{0, 0, 2000, 1000});
  EXPECT_FALSE(normalize_to(p, 16).has_value());
  EXPECT_TRUE(normalize_to(p, 64).has_value());
}

TEST(NormalizeTest, ComplexityInvariantUnderNormalization) {
  const SquishPattern original = sample_pattern();
  const auto [cx0, cy0] = original.topology.complexity();
  const auto p = normalize_to(original, 32);
  ASSERT_TRUE(p.has_value());
  const auto [cx1, cy1] = p->topology.complexity();
  EXPECT_EQ(cx0, cx1);
  EXPECT_EQ(cy0, cy1);
}

TEST(NormalizeTest, MergeIsIdempotent) {
  const SquishPattern merged = merge_redundant_lines(sample_pattern());
  const SquishPattern again = merge_redundant_lines(merged);
  EXPECT_EQ(again.topology, merged.topology);
  EXPECT_EQ(again.dx, merged.dx);
  EXPECT_EQ(again.dy, merged.dy);
}

TEST(NormalizeTest, PadTopologyToBareGrid) {
  Topology t(3, 5);
  t.set(1, 2, 1);
  const auto padded = pad_topology_to(t, 10);
  ASSERT_TRUE(padded.has_value());
  EXPECT_EQ(padded->rows(), 10);
  EXPECT_EQ(padded->cols(), 10);
  // Dedup recovers the original structure.
  EXPECT_EQ(padded->deduplicated(), t.deduplicated());
}

TEST(NormalizeTest, PadTopologyRejectsOversize) {
  Topology t(20, 20);
  EXPECT_FALSE(pad_topology_to(t, 10).has_value());
}

class NormalizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(NormalizeSweep, RandomPatternsRoundTrip) {
  const int target = GetParam();
  util::Rng rng(target);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Rect> rects;
    for (int i = 0; i < 5; ++i) {
      const geometry::Coord x = rng.uniform_int(0, 6) * 120;
      const geometry::Coord y = rng.uniform_int(0, 6) * 120;
      rects.push_back(Rect{x, y, x + 80, y + 80});
    }
    const SquishPattern p = squish(rects, Rect{0, 0, 840, 840});
    const auto normalized = normalize_to(p, target);
    ASSERT_TRUE(normalized.has_value());
    EXPECT_EQ(normalized->topology.rows(), target);
    EXPECT_EQ(normalized->topology.cols(), target);
    EXPECT_EQ(normalized->width_nm(), p.width_nm());
    const SquishPattern merged = merge_redundant_lines(*normalized);
    EXPECT_EQ(merged.topology, merge_redundant_lines(p).topology);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NormalizeSweep, ::testing::Values(16, 24, 32, 64, 128));

}  // namespace
}  // namespace cp::squish
