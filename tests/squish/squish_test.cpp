#include "squish/squish.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"

namespace cp::squish {
namespace {

using geometry::Rect;

/// Canonical form of a rect set for comparison (sorted).
std::vector<Rect> canon(std::vector<Rect> rects) {
  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    return std::tie(a.y0, a.x0, a.y1, a.x1) < std::tie(b.y0, b.x0, b.y1, b.x1);
  });
  return rects;
}

TEST(SquishTest, SingleRect) {
  const Rect window{0, 0, 100, 100};
  const SquishPattern p = squish({{20, 30, 60, 70}}, window);
  // Scan lines: x {0,20,60,100}, y {0,30,70,100} -> 3x3 grid.
  EXPECT_EQ(p.topology.rows(), 3);
  EXPECT_EQ(p.topology.cols(), 3);
  EXPECT_EQ(p.dx, (DeltaVec{20, 40, 40}));
  EXPECT_EQ(p.dy, (DeltaVec{30, 40, 30}));
  EXPECT_EQ(p.topology.at(1, 1), 1);
  EXPECT_EQ(p.topology.popcount(), 1u);
  EXPECT_TRUE(p.well_formed());
}

TEST(SquishTest, EmptyWindowThrows) {
  EXPECT_THROW(squish({}, Rect{0, 0, 0, 10}), std::invalid_argument);
}

TEST(SquishTest, NoRectsGivesSingleEmptyCell) {
  const SquishPattern p = squish({}, Rect{0, 0, 50, 40});
  EXPECT_EQ(p.topology.rows(), 1);
  EXPECT_EQ(p.topology.cols(), 1);
  EXPECT_EQ(p.topology.popcount(), 0u);
  EXPECT_EQ(p.width_nm(), 50);
  EXPECT_EQ(p.height_nm(), 40);
}

TEST(SquishTest, ClipsRectsToWindow) {
  const SquishPattern p = squish({{-10, -10, 30, 30}}, Rect{0, 0, 100, 100});
  // Clipped rect [0,30)x[0,30): scan lines x {0,30,100}.
  EXPECT_EQ(p.topology.cols(), 2);
  EXPECT_EQ(p.topology.at(0, 0), 1);
  EXPECT_EQ(p.topology.at(0, 1), 0);
}

TEST(SquishTest, OverlappingRectsUnion) {
  const SquishPattern p = squish({{0, 0, 60, 40}, {30, 0, 100, 40}}, Rect{0, 0, 100, 40});
  // The union covers the full window: all cells set.
  EXPECT_EQ(p.topology.popcount(), p.topology.size());
}

TEST(SquishTest, UnsquishReconstructsGeometry) {
  const Rect window{0, 0, 200, 150};
  const std::vector<Rect> rects{{20, 30, 60, 70}, {100, 30, 140, 130}};
  const SquishPattern p = squish(rects, window);
  const auto rebuilt = canon(unsquish(p));
  EXPECT_EQ(rebuilt, canon(rects));
}

TEST(SquishTest, SquishUnsquishRoundTripOnRandomPatterns) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    // Non-overlapping rects: at most one per coarse 100x100 cell, inset so
    // neighbours never touch.
    std::vector<Rect> rects;
    std::set<std::pair<int, int>> used;
    for (int i = 0; i < 6; ++i) {
      const int cx = rng.uniform_int(0, 7);
      const int cy = rng.uniform_int(0, 7);
      if (!used.insert({cx, cy}).second) continue;
      const geometry::Coord w = rng.uniform_int(1, 2) * 40;
      const geometry::Coord h = rng.uniform_int(1, 2) * 40;
      rects.push_back(
          Rect{cx * 100 + 10, cy * 100 + 10, cx * 100 + 10 + w, cy * 100 + 10 + h});
    }
    const Rect window{0, 0, 800, 800};
    const SquishPattern p = squish(rects, window);
    // The reconstruction must cover exactly the same area.
    geometry::Coord area_in = 0;
    for (const Rect& r : rects) area_in += r.clipped_to(window).area();
    geometry::Coord area_out = 0;
    for (const Rect& r : unsquish(p)) area_out += r.area();
    EXPECT_EQ(area_in, area_out);
    // And squishing the reconstruction reproduces the same pattern.
    const SquishPattern p2 = squish(unsquish(p), window);
    EXPECT_EQ(p2.topology, p.topology);
    EXPECT_EQ(p2.dx, p.dx);
    EXPECT_EQ(p2.dy, p.dy);
  }
}

TEST(SquishTest, WellFormedRejectsBadDeltas) {
  SquishPattern p;
  p.topology = Topology(1, 2);
  p.dx = {10, 0};  // zero delta
  p.dy = {10};
  EXPECT_FALSE(p.well_formed());
  p.dx = {10};  // wrong size
  EXPECT_FALSE(p.well_formed());
}

TEST(SquishTest, UnsquishRejectsMalformed) {
  SquishPattern p;
  p.topology = Topology(1, 2);
  p.dx = {10};
  p.dy = {10};
  EXPECT_THROW(unsquish(p), std::invalid_argument);
}

TEST(SquishTest, UniformDeltasSumAndPositivity) {
  const DeltaVec d = uniform_deltas(7, 100);
  ASSERT_EQ(d.size(), 7u);
  geometry::Coord sum = 0;
  for (geometry::Coord v : d) {
    EXPECT_GE(v, 1);
    sum += v;
  }
  EXPECT_EQ(sum, 100);
  EXPECT_TRUE(uniform_deltas(0, 100).empty());
}

}  // namespace
}  // namespace cp::squish
