file(REMOVE_RECURSE
  "CMakeFiles/library_builder.dir/library_builder.cpp.o"
  "CMakeFiles/library_builder.dir/library_builder.cpp.o.d"
  "library_builder"
  "library_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
