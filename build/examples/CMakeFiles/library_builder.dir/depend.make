# Empty dependencies file for library_builder.
# This may be replaced when dependencies are built.
