file(REMOVE_RECURSE
  "CMakeFiles/mistake_recovery.dir/mistake_recovery.cpp.o"
  "CMakeFiles/mistake_recovery.dir/mistake_recovery.cpp.o.d"
  "mistake_recovery"
  "mistake_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mistake_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
