# Empty compiler generated dependencies file for mistake_recovery.
# This may be replaced when dependencies are built.
