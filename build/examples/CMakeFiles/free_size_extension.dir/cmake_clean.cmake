file(REMOVE_RECURSE
  "CMakeFiles/free_size_extension.dir/free_size_extension.cpp.o"
  "CMakeFiles/free_size_extension.dir/free_size_extension.cpp.o.d"
  "free_size_extension"
  "free_size_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/free_size_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
