# Empty dependencies file for free_size_extension.
# This may be replaced when dependencies are built.
