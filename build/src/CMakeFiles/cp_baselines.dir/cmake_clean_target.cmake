file(REMOVE_RECURSE
  "libcp_baselines.a"
)
