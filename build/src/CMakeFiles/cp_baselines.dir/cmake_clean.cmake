file(REMOVE_RECURSE
  "CMakeFiles/cp_baselines.dir/baselines/cae.cpp.o"
  "CMakeFiles/cp_baselines.dir/baselines/cae.cpp.o.d"
  "CMakeFiles/cp_baselines.dir/baselines/concat.cpp.o"
  "CMakeFiles/cp_baselines.dir/baselines/concat.cpp.o.d"
  "CMakeFiles/cp_baselines.dir/baselines/layoutransformer.cpp.o"
  "CMakeFiles/cp_baselines.dir/baselines/layoutransformer.cpp.o.d"
  "CMakeFiles/cp_baselines.dir/baselines/legalgan.cpp.o"
  "CMakeFiles/cp_baselines.dir/baselines/legalgan.cpp.o.d"
  "libcp_baselines.a"
  "libcp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
