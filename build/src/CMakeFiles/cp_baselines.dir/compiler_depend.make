# Empty compiler generated dependencies file for cp_baselines.
# This may be replaced when dependencies are built.
