file(REMOVE_RECURSE
  "libcp_geometry.a"
)
