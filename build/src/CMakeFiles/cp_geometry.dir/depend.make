# Empty dependencies file for cp_geometry.
# This may be replaced when dependencies are built.
