file(REMOVE_RECURSE
  "CMakeFiles/cp_geometry.dir/geometry/extract.cpp.o"
  "CMakeFiles/cp_geometry.dir/geometry/extract.cpp.o.d"
  "CMakeFiles/cp_geometry.dir/geometry/polygon.cpp.o"
  "CMakeFiles/cp_geometry.dir/geometry/polygon.cpp.o.d"
  "libcp_geometry.a"
  "libcp_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
