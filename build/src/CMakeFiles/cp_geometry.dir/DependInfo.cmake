
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/extract.cpp" "src/CMakeFiles/cp_geometry.dir/geometry/extract.cpp.o" "gcc" "src/CMakeFiles/cp_geometry.dir/geometry/extract.cpp.o.d"
  "/root/repo/src/geometry/polygon.cpp" "src/CMakeFiles/cp_geometry.dir/geometry/polygon.cpp.o" "gcc" "src/CMakeFiles/cp_geometry.dir/geometry/polygon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
