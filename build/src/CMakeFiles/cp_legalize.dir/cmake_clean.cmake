file(REMOVE_RECURSE
  "CMakeFiles/cp_legalize.dir/legalize/diffconstraint.cpp.o"
  "CMakeFiles/cp_legalize.dir/legalize/diffconstraint.cpp.o.d"
  "CMakeFiles/cp_legalize.dir/legalize/legalizer.cpp.o"
  "CMakeFiles/cp_legalize.dir/legalize/legalizer.cpp.o.d"
  "libcp_legalize.a"
  "libcp_legalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_legalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
