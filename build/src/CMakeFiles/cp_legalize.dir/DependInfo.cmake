
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/legalize/diffconstraint.cpp" "src/CMakeFiles/cp_legalize.dir/legalize/diffconstraint.cpp.o" "gcc" "src/CMakeFiles/cp_legalize.dir/legalize/diffconstraint.cpp.o.d"
  "/root/repo/src/legalize/legalizer.cpp" "src/CMakeFiles/cp_legalize.dir/legalize/legalizer.cpp.o" "gcc" "src/CMakeFiles/cp_legalize.dir/legalize/legalizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cp_drc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_squish.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
