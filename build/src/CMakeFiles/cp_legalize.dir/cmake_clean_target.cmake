file(REMOVE_RECURSE
  "libcp_legalize.a"
)
