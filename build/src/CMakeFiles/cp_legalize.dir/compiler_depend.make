# Empty compiler generated dependencies file for cp_legalize.
# This may be replaced when dependencies are built.
