
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/diffusion/cascade.cpp" "src/CMakeFiles/cp_diffusion.dir/diffusion/cascade.cpp.o" "gcc" "src/CMakeFiles/cp_diffusion.dir/diffusion/cascade.cpp.o.d"
  "/root/repo/src/diffusion/denoiser.cpp" "src/CMakeFiles/cp_diffusion.dir/diffusion/denoiser.cpp.o" "gcc" "src/CMakeFiles/cp_diffusion.dir/diffusion/denoiser.cpp.o.d"
  "/root/repo/src/diffusion/mlp_denoiser.cpp" "src/CMakeFiles/cp_diffusion.dir/diffusion/mlp_denoiser.cpp.o" "gcc" "src/CMakeFiles/cp_diffusion.dir/diffusion/mlp_denoiser.cpp.o.d"
  "/root/repo/src/diffusion/modification.cpp" "src/CMakeFiles/cp_diffusion.dir/diffusion/modification.cpp.o" "gcc" "src/CMakeFiles/cp_diffusion.dir/diffusion/modification.cpp.o.d"
  "/root/repo/src/diffusion/sampler.cpp" "src/CMakeFiles/cp_diffusion.dir/diffusion/sampler.cpp.o" "gcc" "src/CMakeFiles/cp_diffusion.dir/diffusion/sampler.cpp.o.d"
  "/root/repo/src/diffusion/schedule.cpp" "src/CMakeFiles/cp_diffusion.dir/diffusion/schedule.cpp.o" "gcc" "src/CMakeFiles/cp_diffusion.dir/diffusion/schedule.cpp.o.d"
  "/root/repo/src/diffusion/tabular_denoiser.cpp" "src/CMakeFiles/cp_diffusion.dir/diffusion/tabular_denoiser.cpp.o" "gcc" "src/CMakeFiles/cp_diffusion.dir/diffusion/tabular_denoiser.cpp.o.d"
  "/root/repo/src/diffusion/trainer.cpp" "src/CMakeFiles/cp_diffusion.dir/diffusion/trainer.cpp.o" "gcc" "src/CMakeFiles/cp_diffusion.dir/diffusion/trainer.cpp.o.d"
  "/root/repo/src/diffusion/transition.cpp" "src/CMakeFiles/cp_diffusion.dir/diffusion/transition.cpp.o" "gcc" "src/CMakeFiles/cp_diffusion.dir/diffusion/transition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cp_squish.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
