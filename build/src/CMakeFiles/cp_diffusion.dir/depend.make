# Empty dependencies file for cp_diffusion.
# This may be replaced when dependencies are built.
