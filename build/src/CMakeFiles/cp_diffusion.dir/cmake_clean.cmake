file(REMOVE_RECURSE
  "CMakeFiles/cp_diffusion.dir/diffusion/cascade.cpp.o"
  "CMakeFiles/cp_diffusion.dir/diffusion/cascade.cpp.o.d"
  "CMakeFiles/cp_diffusion.dir/diffusion/denoiser.cpp.o"
  "CMakeFiles/cp_diffusion.dir/diffusion/denoiser.cpp.o.d"
  "CMakeFiles/cp_diffusion.dir/diffusion/mlp_denoiser.cpp.o"
  "CMakeFiles/cp_diffusion.dir/diffusion/mlp_denoiser.cpp.o.d"
  "CMakeFiles/cp_diffusion.dir/diffusion/modification.cpp.o"
  "CMakeFiles/cp_diffusion.dir/diffusion/modification.cpp.o.d"
  "CMakeFiles/cp_diffusion.dir/diffusion/sampler.cpp.o"
  "CMakeFiles/cp_diffusion.dir/diffusion/sampler.cpp.o.d"
  "CMakeFiles/cp_diffusion.dir/diffusion/schedule.cpp.o"
  "CMakeFiles/cp_diffusion.dir/diffusion/schedule.cpp.o.d"
  "CMakeFiles/cp_diffusion.dir/diffusion/tabular_denoiser.cpp.o"
  "CMakeFiles/cp_diffusion.dir/diffusion/tabular_denoiser.cpp.o.d"
  "CMakeFiles/cp_diffusion.dir/diffusion/trainer.cpp.o"
  "CMakeFiles/cp_diffusion.dir/diffusion/trainer.cpp.o.d"
  "CMakeFiles/cp_diffusion.dir/diffusion/transition.cpp.o"
  "CMakeFiles/cp_diffusion.dir/diffusion/transition.cpp.o.d"
  "libcp_diffusion.a"
  "libcp_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
