file(REMOVE_RECURSE
  "libcp_diffusion.a"
)
