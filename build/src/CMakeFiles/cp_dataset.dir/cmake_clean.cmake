file(REMOVE_RECURSE
  "CMakeFiles/cp_dataset.dir/dataset/builder.cpp.o"
  "CMakeFiles/cp_dataset.dir/dataset/builder.cpp.o.d"
  "CMakeFiles/cp_dataset.dir/dataset/mapgen.cpp.o"
  "CMakeFiles/cp_dataset.dir/dataset/mapgen.cpp.o.d"
  "CMakeFiles/cp_dataset.dir/dataset/style.cpp.o"
  "CMakeFiles/cp_dataset.dir/dataset/style.cpp.o.d"
  "libcp_dataset.a"
  "libcp_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
