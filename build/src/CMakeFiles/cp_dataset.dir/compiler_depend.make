# Empty compiler generated dependencies file for cp_dataset.
# This may be replaced when dependencies are built.
