file(REMOVE_RECURSE
  "libcp_dataset.a"
)
