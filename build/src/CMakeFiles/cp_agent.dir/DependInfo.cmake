
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agent/chat_session.cpp" "src/CMakeFiles/cp_agent.dir/agent/chat_session.cpp.o" "gcc" "src/CMakeFiles/cp_agent.dir/agent/chat_session.cpp.o.d"
  "/root/repo/src/agent/executor.cpp" "src/CMakeFiles/cp_agent.dir/agent/executor.cpp.o" "gcc" "src/CMakeFiles/cp_agent.dir/agent/executor.cpp.o.d"
  "/root/repo/src/agent/experience.cpp" "src/CMakeFiles/cp_agent.dir/agent/experience.cpp.o" "gcc" "src/CMakeFiles/cp_agent.dir/agent/experience.cpp.o.d"
  "/root/repo/src/agent/llm_client.cpp" "src/CMakeFiles/cp_agent.dir/agent/llm_client.cpp.o" "gcc" "src/CMakeFiles/cp_agent.dir/agent/llm_client.cpp.o.d"
  "/root/repo/src/agent/nl_parser.cpp" "src/CMakeFiles/cp_agent.dir/agent/nl_parser.cpp.o" "gcc" "src/CMakeFiles/cp_agent.dir/agent/nl_parser.cpp.o.d"
  "/root/repo/src/agent/planner.cpp" "src/CMakeFiles/cp_agent.dir/agent/planner.cpp.o" "gcc" "src/CMakeFiles/cp_agent.dir/agent/planner.cpp.o.d"
  "/root/repo/src/agent/requirement.cpp" "src/CMakeFiles/cp_agent.dir/agent/requirement.cpp.o" "gcc" "src/CMakeFiles/cp_agent.dir/agent/requirement.cpp.o.d"
  "/root/repo/src/agent/tools.cpp" "src/CMakeFiles/cp_agent.dir/agent/tools.cpp.o" "gcc" "src/CMakeFiles/cp_agent.dir/agent/tools.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cp_extension.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_legalize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_drc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_squish.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
