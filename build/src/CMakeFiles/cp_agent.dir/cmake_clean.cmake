file(REMOVE_RECURSE
  "CMakeFiles/cp_agent.dir/agent/chat_session.cpp.o"
  "CMakeFiles/cp_agent.dir/agent/chat_session.cpp.o.d"
  "CMakeFiles/cp_agent.dir/agent/executor.cpp.o"
  "CMakeFiles/cp_agent.dir/agent/executor.cpp.o.d"
  "CMakeFiles/cp_agent.dir/agent/experience.cpp.o"
  "CMakeFiles/cp_agent.dir/agent/experience.cpp.o.d"
  "CMakeFiles/cp_agent.dir/agent/llm_client.cpp.o"
  "CMakeFiles/cp_agent.dir/agent/llm_client.cpp.o.d"
  "CMakeFiles/cp_agent.dir/agent/nl_parser.cpp.o"
  "CMakeFiles/cp_agent.dir/agent/nl_parser.cpp.o.d"
  "CMakeFiles/cp_agent.dir/agent/planner.cpp.o"
  "CMakeFiles/cp_agent.dir/agent/planner.cpp.o.d"
  "CMakeFiles/cp_agent.dir/agent/requirement.cpp.o"
  "CMakeFiles/cp_agent.dir/agent/requirement.cpp.o.d"
  "CMakeFiles/cp_agent.dir/agent/tools.cpp.o"
  "CMakeFiles/cp_agent.dir/agent/tools.cpp.o.d"
  "libcp_agent.a"
  "libcp_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
