# Empty compiler generated dependencies file for cp_agent.
# This may be replaced when dependencies are built.
