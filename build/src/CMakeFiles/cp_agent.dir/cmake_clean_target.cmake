file(REMOVE_RECURSE
  "libcp_agent.a"
)
