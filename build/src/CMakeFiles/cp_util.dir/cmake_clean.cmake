file(REMOVE_RECURSE
  "CMakeFiles/cp_util.dir/util/cli.cpp.o"
  "CMakeFiles/cp_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/cp_util.dir/util/json.cpp.o"
  "CMakeFiles/cp_util.dir/util/json.cpp.o.d"
  "CMakeFiles/cp_util.dir/util/logging.cpp.o"
  "CMakeFiles/cp_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/cp_util.dir/util/rng.cpp.o"
  "CMakeFiles/cp_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/cp_util.dir/util/strings.cpp.o"
  "CMakeFiles/cp_util.dir/util/strings.cpp.o.d"
  "libcp_util.a"
  "libcp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
