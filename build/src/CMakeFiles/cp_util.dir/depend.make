# Empty dependencies file for cp_util.
# This may be replaced when dependencies are built.
