file(REMOVE_RECURSE
  "libcp_util.a"
)
