# Empty compiler generated dependencies file for cp_drc.
# This may be replaced when dependencies are built.
