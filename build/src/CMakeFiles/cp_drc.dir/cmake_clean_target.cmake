file(REMOVE_RECURSE
  "libcp_drc.a"
)
