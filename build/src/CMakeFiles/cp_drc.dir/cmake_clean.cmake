file(REMOVE_RECURSE
  "CMakeFiles/cp_drc.dir/drc/checker.cpp.o"
  "CMakeFiles/cp_drc.dir/drc/checker.cpp.o.d"
  "CMakeFiles/cp_drc.dir/drc/rules.cpp.o"
  "CMakeFiles/cp_drc.dir/drc/rules.cpp.o.d"
  "libcp_drc.a"
  "libcp_drc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_drc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
