# Empty dependencies file for cp_nn.
# This may be replaced when dependencies are built.
