file(REMOVE_RECURSE
  "CMakeFiles/cp_nn.dir/nn/layers.cpp.o"
  "CMakeFiles/cp_nn.dir/nn/layers.cpp.o.d"
  "CMakeFiles/cp_nn.dir/nn/optim.cpp.o"
  "CMakeFiles/cp_nn.dir/nn/optim.cpp.o.d"
  "CMakeFiles/cp_nn.dir/nn/serialize.cpp.o"
  "CMakeFiles/cp_nn.dir/nn/serialize.cpp.o.d"
  "CMakeFiles/cp_nn.dir/nn/tensor.cpp.o"
  "CMakeFiles/cp_nn.dir/nn/tensor.cpp.o.d"
  "libcp_nn.a"
  "libcp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
