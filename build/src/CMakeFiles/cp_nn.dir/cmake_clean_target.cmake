file(REMOVE_RECURSE
  "libcp_nn.a"
)
