file(REMOVE_RECURSE
  "libcp_metrics.a"
)
