# Empty compiler generated dependencies file for cp_metrics.
# This may be replaced when dependencies are built.
