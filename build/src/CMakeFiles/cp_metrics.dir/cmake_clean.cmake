file(REMOVE_RECURSE
  "CMakeFiles/cp_metrics.dir/metrics/metrics.cpp.o"
  "CMakeFiles/cp_metrics.dir/metrics/metrics.cpp.o.d"
  "libcp_metrics.a"
  "libcp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
