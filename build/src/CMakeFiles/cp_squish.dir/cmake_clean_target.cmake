file(REMOVE_RECURSE
  "libcp_squish.a"
)
