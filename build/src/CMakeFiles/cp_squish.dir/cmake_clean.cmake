file(REMOVE_RECURSE
  "CMakeFiles/cp_squish.dir/squish/normalize.cpp.o"
  "CMakeFiles/cp_squish.dir/squish/normalize.cpp.o.d"
  "CMakeFiles/cp_squish.dir/squish/squish.cpp.o"
  "CMakeFiles/cp_squish.dir/squish/squish.cpp.o.d"
  "CMakeFiles/cp_squish.dir/squish/topology.cpp.o"
  "CMakeFiles/cp_squish.dir/squish/topology.cpp.o.d"
  "libcp_squish.a"
  "libcp_squish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_squish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
