# Empty compiler generated dependencies file for cp_squish.
# This may be replaced when dependencies are built.
