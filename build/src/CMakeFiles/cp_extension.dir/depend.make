# Empty dependencies file for cp_extension.
# This may be replaced when dependencies are built.
