file(REMOVE_RECURSE
  "libcp_extension.a"
)
