file(REMOVE_RECURSE
  "CMakeFiles/cp_extension.dir/extension/inpaint.cpp.o"
  "CMakeFiles/cp_extension.dir/extension/inpaint.cpp.o.d"
  "CMakeFiles/cp_extension.dir/extension/masks.cpp.o"
  "CMakeFiles/cp_extension.dir/extension/masks.cpp.o.d"
  "CMakeFiles/cp_extension.dir/extension/outpaint.cpp.o"
  "CMakeFiles/cp_extension.dir/extension/outpaint.cpp.o.d"
  "CMakeFiles/cp_extension.dir/extension/planner.cpp.o"
  "CMakeFiles/cp_extension.dir/extension/planner.cpp.o.d"
  "libcp_extension.a"
  "libcp_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
