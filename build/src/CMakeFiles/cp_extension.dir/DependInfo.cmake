
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extension/inpaint.cpp" "src/CMakeFiles/cp_extension.dir/extension/inpaint.cpp.o" "gcc" "src/CMakeFiles/cp_extension.dir/extension/inpaint.cpp.o.d"
  "/root/repo/src/extension/masks.cpp" "src/CMakeFiles/cp_extension.dir/extension/masks.cpp.o" "gcc" "src/CMakeFiles/cp_extension.dir/extension/masks.cpp.o.d"
  "/root/repo/src/extension/outpaint.cpp" "src/CMakeFiles/cp_extension.dir/extension/outpaint.cpp.o" "gcc" "src/CMakeFiles/cp_extension.dir/extension/outpaint.cpp.o.d"
  "/root/repo/src/extension/planner.cpp" "src/CMakeFiles/cp_extension.dir/extension/planner.cpp.o" "gcc" "src/CMakeFiles/cp_extension.dir/extension/planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cp_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_squish.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
