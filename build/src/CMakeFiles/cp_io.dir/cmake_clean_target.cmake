file(REMOVE_RECURSE
  "libcp_io.a"
)
