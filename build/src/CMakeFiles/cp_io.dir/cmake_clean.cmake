file(REMOVE_RECURSE
  "CMakeFiles/cp_io.dir/io/gds.cpp.o"
  "CMakeFiles/cp_io.dir/io/gds.cpp.o.d"
  "libcp_io.a"
  "libcp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
