# Empty dependencies file for cp_io.
# This may be replaced when dependencies are built.
