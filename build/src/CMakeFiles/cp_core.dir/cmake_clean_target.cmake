file(REMOVE_RECURSE
  "libcp_core.a"
)
