file(REMOVE_RECURSE
  "CMakeFiles/cp_core.dir/core/chatpattern.cpp.o"
  "CMakeFiles/cp_core.dir/core/chatpattern.cpp.o.d"
  "CMakeFiles/cp_core.dir/core/pattern_library.cpp.o"
  "CMakeFiles/cp_core.dir/core/pattern_library.cpp.o.d"
  "CMakeFiles/cp_core.dir/core/selection.cpp.o"
  "CMakeFiles/cp_core.dir/core/selection.cpp.o.d"
  "libcp_core.a"
  "libcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
