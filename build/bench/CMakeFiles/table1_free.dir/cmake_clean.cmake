file(REMOVE_RECURSE
  "CMakeFiles/table1_free.dir/table1_free.cpp.o"
  "CMakeFiles/table1_free.dir/table1_free.cpp.o.d"
  "table1_free"
  "table1_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
