# Empty dependencies file for table1_free.
# This may be replaced when dependencies are built.
