# Empty dependencies file for fig9_outpaint_showcase.
# This may be replaced when dependencies are built.
