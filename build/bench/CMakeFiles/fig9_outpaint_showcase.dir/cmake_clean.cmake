file(REMOVE_RECURSE
  "CMakeFiles/fig9_outpaint_showcase.dir/fig9_outpaint_showcase.cpp.o"
  "CMakeFiles/fig9_outpaint_showcase.dir/fig9_outpaint_showcase.cpp.o.d"
  "fig9_outpaint_showcase"
  "fig9_outpaint_showcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_outpaint_showcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
