# Empty dependencies file for agent_eval.
# This may be replaced when dependencies are built.
