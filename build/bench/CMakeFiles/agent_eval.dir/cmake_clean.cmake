file(REMOVE_RECURSE
  "CMakeFiles/agent_eval.dir/agent_eval.cpp.o"
  "CMakeFiles/agent_eval.dir/agent_eval.cpp.o.d"
  "agent_eval"
  "agent_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
