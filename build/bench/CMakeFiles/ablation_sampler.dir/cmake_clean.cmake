file(REMOVE_RECURSE
  "CMakeFiles/ablation_sampler.dir/ablation_sampler.cpp.o"
  "CMakeFiles/ablation_sampler.dir/ablation_sampler.cpp.o.d"
  "ablation_sampler"
  "ablation_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
