file(REMOVE_RECURSE
  "CMakeFiles/table1_fixed.dir/table1_fixed.cpp.o"
  "CMakeFiles/table1_fixed.dir/table1_fixed.cpp.o.d"
  "table1_fixed"
  "table1_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
