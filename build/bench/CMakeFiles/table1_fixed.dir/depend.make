# Empty dependencies file for table1_fixed.
# This may be replaced when dependencies are built.
