file(REMOVE_RECURSE
  "CMakeFiles/ablation_extension.dir/ablation_extension.cpp.o"
  "CMakeFiles/ablation_extension.dir/ablation_extension.cpp.o.d"
  "ablation_extension"
  "ablation_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
