# Empty dependencies file for ablation_extension.
# This may be replaced when dependencies are built.
