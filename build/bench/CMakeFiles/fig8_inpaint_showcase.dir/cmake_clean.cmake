file(REMOVE_RECURSE
  "CMakeFiles/fig8_inpaint_showcase.dir/fig8_inpaint_showcase.cpp.o"
  "CMakeFiles/fig8_inpaint_showcase.dir/fig8_inpaint_showcase.cpp.o.d"
  "fig8_inpaint_showcase"
  "fig8_inpaint_showcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_inpaint_showcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
