# Empty dependencies file for fig8_inpaint_showcase.
# This may be replaced when dependencies are built.
