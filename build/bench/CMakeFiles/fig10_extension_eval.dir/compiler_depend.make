# Empty compiler generated dependencies file for fig10_extension_eval.
# This may be replaced when dependencies are built.
