file(REMOVE_RECURSE
  "CMakeFiles/fig10_extension_eval.dir/fig10_extension_eval.cpp.o"
  "CMakeFiles/fig10_extension_eval.dir/fig10_extension_eval.cpp.o.d"
  "fig10_extension_eval"
  "fig10_extension_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_extension_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
