file(REMOVE_RECURSE
  "CMakeFiles/squish_test.dir/squish/normalize_test.cpp.o"
  "CMakeFiles/squish_test.dir/squish/normalize_test.cpp.o.d"
  "CMakeFiles/squish_test.dir/squish/squish_test.cpp.o"
  "CMakeFiles/squish_test.dir/squish/squish_test.cpp.o.d"
  "CMakeFiles/squish_test.dir/squish/topology_test.cpp.o"
  "CMakeFiles/squish_test.dir/squish/topology_test.cpp.o.d"
  "squish_test"
  "squish_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squish_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
