# Empty dependencies file for legalize_test.
# This may be replaced when dependencies are built.
