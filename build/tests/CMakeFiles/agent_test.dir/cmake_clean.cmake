file(REMOVE_RECURSE
  "CMakeFiles/agent_test.dir/agent/brain_test.cpp.o"
  "CMakeFiles/agent_test.dir/agent/brain_test.cpp.o.d"
  "CMakeFiles/agent_test.dir/agent/executor_test.cpp.o"
  "CMakeFiles/agent_test.dir/agent/executor_test.cpp.o.d"
  "CMakeFiles/agent_test.dir/agent/experience_test.cpp.o"
  "CMakeFiles/agent_test.dir/agent/experience_test.cpp.o.d"
  "CMakeFiles/agent_test.dir/agent/nl_parser_test.cpp.o"
  "CMakeFiles/agent_test.dir/agent/nl_parser_test.cpp.o.d"
  "CMakeFiles/agent_test.dir/agent/requirement_test.cpp.o"
  "CMakeFiles/agent_test.dir/agent/requirement_test.cpp.o.d"
  "CMakeFiles/agent_test.dir/agent/tools_test.cpp.o"
  "CMakeFiles/agent_test.dir/agent/tools_test.cpp.o.d"
  "agent_test"
  "agent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
