
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/core_test.cpp" "tests/CMakeFiles/core_test.dir/core/core_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/core_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_extension.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_legalize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_drc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_diffusion.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_squish.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
